package ar

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
)

func decompose(t *testing.T, vals []int64, bits uint) *bwd.Column {
	t.Helper()
	col, err := bwd.Decompose(bat.NewDense(vals, bat.Width32), bits, nil)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	return col
}

func shuffledInts(n int, seed int64) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	return vals
}

func sortedIDs(ids []bat.OID) []bat.OID {
	out := append([]bat.OID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSelectApproxSupersetOfExact(t *testing.T) {
	vals := shuffledInts(10000, 1)
	col := decompose(t, vals, 8) // aggressive decomposition: many FPs
	lo, hi := int64(1000), int64(2000)
	cands := SelectApprox(nil, col, col.Relax(lo, hi))
	exact := bulk.SelectRange(nil, 1, bat.NewDense(vals, bat.Width32), lo, hi)

	inCand := make(map[bat.OID]bool, cands.Len())
	for _, id := range cands.IDs {
		inCand[id] = true
	}
	for _, id := range exact {
		if !inCand[id] {
			t.Fatalf("exact id %d missing from approximate candidates", id)
		}
	}
	if cands.Len() < len(exact) {
		t.Fatalf("candidate set smaller than exact result: %d < %d", cands.Len(), len(exact))
	}
}

func TestSelectApproxOutputIsPermuted(t *testing.T) {
	vals := shuffledInts(200000, 2)
	col := decompose(t, vals, 10)
	cands := SelectApprox(nil, col, col.Relax(0, 199999)) // select everything
	if cands.Len() != 200000 {
		t.Fatalf("Len = %d, want 200000", cands.Len())
	}
	monotone := true
	for i := 1; i < cands.Len(); i++ {
		if cands.IDs[i] < cands.IDs[i-1] {
			monotone = false
			break
		}
	}
	if monotone {
		t.Error("device selection preserved input order; §IV-A item 3 not modelled")
	}
}

func TestSelectRefineEqualsBulkBaseline(t *testing.T) {
	f := func(seed int64, rawBits uint8, rawLo, rawHi uint16) bool {
		n := 3000
		vals := shuffledInts(n, seed)
		col, err := bwd.Decompose(bat.NewDense(vals, bat.Width32), uint(rawBits%14)+1, nil)
		if err != nil {
			return false
		}
		lo, hi := int64(rawLo)%int64(n), int64(rawHi)%int64(n)
		if lo > hi {
			lo, hi = hi, lo
		}
		cands := SelectApprox(nil, col, col.Relax(lo, hi))
		cands.Ship(nil)
		refined, refVals := SelectRefine(nil, 1, col, lo, hi, cands)

		want := bulk.SelectRange(nil, 1, bat.NewDense(vals, bat.Width32), lo, hi)
		if len(refined.IDs) != len(want) {
			return false
		}
		got := sortedIDs(refined.IDs)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		// Values must be the exact reconstructed attribute values.
		for i, id := range refined.IDs {
			if refVals[i] != vals[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSelectRefinePreservesCandidateOrder(t *testing.T) {
	vals := shuffledInts(50000, 3)
	col := decompose(t, vals, 9)
	cands := SelectApprox(nil, col, col.Relax(100, 40000))
	refined, _ := SelectRefine(nil, 1, col, 100, 40000, cands)

	// refined.IDs must be a subsequence of cands.IDs.
	j := 0
	for _, id := range refined.IDs {
		for j < len(cands.IDs) && cands.IDs[j] != id {
			j++
		}
		if j == len(cands.IDs) {
			t.Fatal("refined output is not an order-preserving subset of candidates")
		}
		j++
	}
}

func TestSelectApproxOverConjunction(t *testing.T) {
	// Two columns, conjunctive range predicates — the spatial query shape.
	n := 20000
	a := shuffledInts(n, 4)
	b := shuffledInts(n, 5)
	colA := decompose(t, a, 8)
	colB := decompose(t, b, 8)

	c1 := SelectApprox(nil, colA, colA.Relax(1000, 5000))
	c2 := SelectApproxOver(nil, colB, colB.Relax(2000, 9000), c1)
	c2.Ship(nil)
	r1, _ := SelectRefine(nil, 1, colA, 1000, 5000, c2)
	r2, valsB := SelectRefine(nil, 1, colB, 2000, 9000, r1)

	// Ground truth via the bulk baseline.
	bb := bat.NewDense(b, bat.Width32)
	idsA := bulk.SelectRange(nil, 1, bat.NewDense(a, bat.Width32), 1000, 5000)
	want := bulk.SelectOIDs(nil, 1, bb, idsA, 2000, 9000)

	if len(r2.IDs) != len(want) {
		t.Fatalf("conjunction size = %d, want %d", len(r2.IDs), len(want))
	}
	got := sortedIDs(r2.IDs)
	wantSorted := sortedIDs(want)
	for i := range want {
		if got[i] != wantSorted[i] {
			t.Fatalf("conjunction ids diverge at %d", i)
		}
	}
	for i, id := range r2.IDs {
		if valsB[i] != b[id] {
			t.Fatalf("exact value mismatch at id %d", id)
		}
	}
}

func TestSelectEmptyRelaxedRange(t *testing.T) {
	vals := shuffledInts(1000, 6)
	col := decompose(t, vals, 8)
	cands := SelectApprox(nil, col, col.Relax(5000, 9000)) // above domain
	if cands.Len() != 0 {
		t.Errorf("empty relaxed range produced %d candidates", cands.Len())
	}
	refined, refVals := SelectRefine(nil, 1, col, 5000, 9000, cands)
	if len(refined.IDs) != 0 || len(refVals) != 0 {
		t.Error("refinement of empty candidates not empty")
	}
}

func TestSelectFullyResidentColumnRefinementIsExactPassthrough(t *testing.T) {
	vals := shuffledInts(1000, 7)
	col := decompose(t, vals, 32) // 10 total bits -> fully GPU resident
	if col.Dec.ResBits != 0 {
		t.Fatalf("expected fully resident column, ResBits = %d", col.Dec.ResBits)
	}
	lo, hi := int64(100), int64(300)
	cands := SelectApprox(nil, col, col.Relax(lo, hi))
	want := bulk.SelectRange(nil, 1, bat.NewDense(vals, bat.Width32), lo, hi)
	if cands.Len() != len(want) {
		t.Fatalf("fully resident approximation has %d candidates, want exact %d", cands.Len(), len(want))
	}
	refined, _ := SelectRefine(nil, 1, col, lo, hi, cands)
	if len(refined.IDs) != len(want) {
		t.Error("refinement changed an already-exact result")
	}
}

func TestSelectChargesDevices(t *testing.T) {
	sys := device.PaperSystem()
	m := device.NewMeter(sys)
	vals := shuffledInts(100000, 8)
	col, err := bwd.Decompose(bat.NewDense(vals, bat.Width32), 9, sys)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	cands := SelectApprox(m, col, col.Relax(0, 10000))
	if m.GPU == 0 {
		t.Error("approximate selection charged no GPU time")
	}
	if m.CPU != 0 {
		t.Error("approximate selection charged CPU time")
	}
	cands.Ship(m)
	if m.PCI == 0 {
		t.Error("shipping candidates charged no PCI time")
	}
	pciBefore := m.PCI
	cands.Ship(m)
	if m.PCI != pciBefore {
		t.Error("double ship charged twice")
	}
	SelectRefine(m, 1, col, 0, 10000, cands)
	if m.CPU == 0 {
		t.Error("refinement charged no CPU time")
	}
}

func TestCertainFlagsBoundaryBuckets(t *testing.T) {
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64(i)
	}
	col := decompose(t, vals, 6) // 10 bits -> 6/4: bucket size 16
	lo, hi := int64(100), int64(200)
	cands := SelectApprox(nil, col, col.Relax(lo, hi))
	for i, id := range cands.IDs {
		v := vals[id]
		bucketLo := v/16 == lo/16
		bucketHi := v/16 == hi/16
		if cands.Certain(i) && (bucketLo || bucketHi) {
			t.Fatalf("boundary-bucket candidate %d flagged certain", v)
		}
		if !cands.Certain(i) && !bucketLo && !bucketHi {
			t.Fatalf("interior candidate %d flagged uncertain", v)
		}
	}
}

func TestReconstructAllMatchesSource(t *testing.T) {
	vals := shuffledInts(5000, 9)
	col := decompose(t, vals, 7)
	cands := SelectApprox(nil, col, col.Relax(0, 4999))
	got := ReconstructAll(nil, 1, col, cands)
	for i, id := range cands.IDs {
		if got[i] != vals[id] {
			t.Fatalf("ReconstructAll[%d] = %d, want %d", i, got[i], vals[id])
		}
	}
}
