package ar

import (
	"errors"
	"fmt"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/mem"
)

// ErrTranslucentPrecondition is returned when the translucent join's input
// conditions (§IV-A) are violated: B's IDs must be a subset of A's IDs with
// the same relative permutation.
var ErrTranslucentPrecondition = errors.New("ar: translucent join precondition violated")

// TranslucentJoin implements Algorithm 1 of the paper: a natural join of
// two enumerated relations on their ID columns under three conditions:
//
//  1. A's and B's IDs are unique,
//  2. A's IDs are a superset of B's IDs (equivalently, B.id is a
//     foreign-key set into A.id),
//  3. the elements of B.id occur in the same relative order in A.id.
//
// It returns, for every position in bIDs, the matching position in aIDs.
// When A's IDs are sorted and dense the join degenerates to the invisible
// join (a positional lookup); otherwise a single merge pass advances the A
// cursor until each B element is found, giving O(|A|+|B|) accesses without
// requiring sorted inputs — the key trick that tolerates the permuted
// output order of massively parallel device kernels.
//
// The preconditions are verified as a side effect: if any B element cannot
// be located before A is exhausted, ErrTranslucentPrecondition is returned.
func TranslucentJoin(aIDs, bIDs []bat.OID) ([]int, error) {
	out := mem.Ints.GetN(len(bIDs))
	if sortedDense(aIDs) {
		// Invisible join: position derivable from the ID itself.
		base := bat.OID(0)
		if len(aIDs) > 0 {
			base = aIDs[0]
		}
		for i, id := range bIDs {
			if id < base || int(id-base) >= len(aIDs) {
				mem.Ints.Put(out)
				return nil, fmt.Errorf("%w: id %d outside dense range", ErrTranslucentPrecondition, id)
			}
			out[i] = int(id - base)
		}
		return out, nil
	}
	iA := 0
	for iB, id := range bIDs {
		for iA < len(aIDs) && aIDs[iA] != id {
			iA++
		}
		if iA == len(aIDs) {
			mem.Ints.Put(out)
			return nil, fmt.Errorf("%w: id %d not found in remaining superset", ErrTranslucentPrecondition, id)
		}
		out[iB] = iA
		iA++
	}
	return out, nil
}

// sortedDense reports whether ids are consecutive ascending values — the
// fast-path test of Algorithm 1 (SORTED ∧ DENSE).
func sortedDense(ids []bat.OID) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			return false
		}
	}
	return true
}

// TranslucentJoinMetered is TranslucentJoin with CPU cost accounting: the
// merge reads both ID lists sequentially (O(|A|+|B|) accesses, O(|A|)
// comparisons per the paper's analysis).
func TranslucentJoinMetered(m *device.Meter, threads int, aIDs, bIDs []bat.OID) ([]int, error) {
	pos, err := TranslucentJoin(aIDs, bIDs)
	if err != nil {
		return nil, err
	}
	// When nothing was refined away the subset equals the superset and the
	// operator aliases its input (a MonetDB view) instead of joining —
	// free in the plan, verified here in real execution by TranslucentJoin.
	if m != nil && len(aIDs) != len(bIDs) {
		m.CPUWork(threads,
			int64(len(aIDs))*4+int64(len(bIDs))*4+int64(len(bIDs))*8, 0,
			int64(len(aIDs)))
	}
	return pos, nil
}
