package ar

import (
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/par"
)

// Grouping is the result of an approximate (pre-)grouping (§IV-E): a dense
// group ID per candidate, positionally aligned with the candidate set —
// the MonetDB representation of groupings — plus the distinct
// approximation codes in first-appearance order.
type Grouping struct {
	Src     *Candidates
	Col     *bwd.Column
	IDs     []uint32 // group id per candidate position
	NGroups int
	Codes   []uint64 // Codes[g] is the approximation code of group g
	shipped bool
}

// GroupApprox hash-groups the candidates by the approximation codes of col
// on the device. The cost model charges the massively parallel hash
// build's write-conflict serialization: with G groups and L device lanes,
// concurrent lanes collide on the same group entry at a rate proportional
// to L/G, which is why "performance improves with the number of groups due
// to fewer write conflicts on the grouping table" (§VI-B, Fig 8f).
//
// If col is fully device resident, the approximate grouping is already the
// exact grouping of the candidate set (§IV-E: low-cardinality grouping
// columns compress enough to stay resident, eliminating subgrouping).
func GroupApprox(m *device.Meter, col *bwd.Column, cands *Candidates) *Grouping {
	codes := cands.CodesFor(col)
	if codes == nil {
		p := ProjectApprox(m, col, cands)
		codes = p.Codes
	}
	idx := make(map[uint64]uint32, 64)
	ids := make([]uint32, len(codes))
	var uniq []uint64
	for i, c := range codes {
		g, ok := idx[c]
		if !ok {
			g = uint32(len(uniq))
			idx[c] = g
			uniq = append(uniq, c)
		}
		ids[i] = g
	}
	if m != nil {
		n := int64(len(codes))
		lanes := float64(m.System().GPU.Threads)
		groups := float64(len(uniq))
		if groups < 1 {
			groups = 1
		}
		// Serialized atomic updates: with L lanes spread over G group
		// entries, L/G lanes contend for the same entry on average, so
		// each tuple's write waits behind that many serialized updates.
		depth := lanes / groups
		if depth > lanes {
			depth = lanes
		}
		if depth < 1 {
			depth = 1
		}
		conflictOps := int64(float64(n) * depth)
		seq := packedBytes(len(codes), col.Dec.ApproxBits) + n*4
		m.GPUKernel(seq, 0, n*bulk.OpsHashGroup+conflictOps)
	}
	return &Grouping{Src: cands, Col: col, IDs: ids, NGroups: len(uniq), Codes: uniq}
}

// Ship charges the transfer of the per-candidate group IDs to the host.
func (g *Grouping) Ship(m *device.Meter) {
	if g.shipped {
		return
	}
	g.shipped = true
	if m != nil {
		m.Transfer(int64(len(g.IDs))*4 + int64(g.NGroups)*8)
	}
}

// GroupRefine produces the exact grouping of the refined candidate subset.
//
// When the grouping column is fully device resident, the pre-grouping is
// already exact: the refinement only eliminates the false positives
// introduced by earlier operators, via a translucent join of the refined
// IDs into the pre-grouping (§IV-E, Fig 4's Grouping/Aggregation panel).
// Otherwise the CPU regroups on reconstructed exact values — the paper's
// observation that MonetDB's positional grouping representation cannot
// profit from a physical pre-grouping.
func GroupRefine(m *device.Meter, threads int, g *Grouping, refined *Candidates) (*bulk.Grouping, error) {
	return GroupRefinePar(par.Bill(threads), m, g, refined)
}

// GroupRefinePar is the morsel-parallel GroupRefine: the exact-pre-grouping
// path densifies surviving group IDs with block-partial first-appearance
// remapping (identical order to the serial pass), and the decomposed path
// reconstructs keys per-morsel before regrouping with the parallel GroupBy.
func GroupRefinePar(p par.P, m *device.Meter, g *Grouping, refined *Candidates) (*bulk.Grouping, error) {
	if g.Col.Dec.ResBits == 0 {
		pos, err := TranslucentJoinMetered(m, p.NThreads(), g.Src.IDs, refined.IDs)
		if err != nil {
			return nil, err
		}
		// Pass the exact pre-grouping through, dropping groups emptied by
		// false-positive elimination.
		old := make([]uint32, len(pos))
		p.For(len(pos), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				old[i] = g.IDs[pos[i]]
			}
		})
		ids, order := remapFirstAppearance(p, old, g.NGroups)
		keys := make([]int64, len(order))
		for newID, oldID := range order {
			keys[newID] = g.Col.Dec.Base + int64(g.Codes[oldID])
		}
		if m != nil {
			m.CPUWork(p.NThreads(), int64(len(pos))*8, 0, int64(len(pos)))
		}
		return &bulk.Grouping{IDs: ids, NGroups: len(keys), Keys: keys}, nil
	}
	// Decomposed grouping column: re-derive each surviving tuple's exact
	// key from the pre-grouping's code (translucent join back into the
	// candidate alignment) and the host-resident residual, then regroup.
	pos, err := TranslucentJoinMetered(m, p.NThreads(), g.Src.IDs, refined.IDs)
	if err != nil {
		return nil, err
	}
	vals := make([]int64, len(pos))
	p.For(len(pos), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			code := g.Codes[g.IDs[pos[i]]]
			var r uint64
			if g.Col.Dec.ResBits > 0 {
				r = g.Col.Residual.Get(int(refined.IDs[i]))
			}
			vals[i] = g.Col.ReconstructFrom(code, r)
		}
	})
	if m != nil {
		m.CPUWork(p.NThreads(), int64(len(pos))*12,
			int64(len(pos))*residualBytes(g.Col.Dec.ResBits), int64(len(pos)))
	}
	return bulk.GroupByPar(p, m, vals), nil
}

// remapFirstAppearance densifies a stream of old group IDs (dense in
// [0,nOld)) into new IDs assigned in order of first appearance, exactly as
// a serial left-to-right scan would. Each worker records the appearance
// order within its contiguous block; merging the block lists left to right
// yields the global order, so the result is identical for every worker
// count. order maps new ID -> old ID.
func remapFirstAppearance(p par.P, old []uint32, nOld int) (ids []uint32, order []uint32) {
	ids = make([]uint32, len(old))
	if p.NWorkers() <= 1 || len(old) < 1024 {
		remap := make([]int32, nOld)
		for i := range remap {
			remap[i] = -1
		}
		for i, o := range old {
			if remap[o] < 0 {
				remap[o] = int32(len(order))
				order = append(order, o)
			}
			ids[i] = uint32(remap[o])
		}
		return ids, order
	}
	blocks := p.Blocks(len(old))
	type partial struct {
		seen   []int32 // old id -> local id, -1 when unseen
		firsts []uint32
	}
	parts := make([]partial, len(blocks))
	par.RunBlocks(p, len(old), func(b, lo, hi int) {
		pt := &parts[b]
		if pt.seen == nil {
			pt.seen = make([]int32, nOld)
			for i := range pt.seen {
				pt.seen[i] = -1
			}
		}
		for i := lo; i < hi; i++ {
			o := old[i]
			if pt.seen[o] < 0 {
				pt.seen[o] = int32(len(pt.firsts))
				pt.firsts = append(pt.firsts, o)
			}
			ids[i] = uint32(pt.seen[o])
		}
	})
	global := make([]int32, nOld)
	for i := range global {
		global[i] = -1
	}
	remap := make([][]uint32, len(blocks))
	for b := range parts {
		remap[b] = make([]uint32, len(parts[b].firsts))
		for localID, o := range parts[b].firsts {
			if global[o] < 0 {
				global[o] = int32(len(order))
				order = append(order, o)
			}
			remap[b][localID] = uint32(global[o])
		}
	}
	size := blocks[0].Hi - blocks[0].Lo
	p.For(len(old), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b := i / size
			if b >= len(blocks) {
				b = len(blocks) - 1
			}
			ids[i] = remap[b][ids[i]]
		}
	})
	return ids, order
}
