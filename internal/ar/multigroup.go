package ar

import (
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/par"
)

// MultiGrouping is the device-side pre-grouping over several columns at
// once (TPC-H Q1 groups by l_returnflag, l_linestatus). Group identity is
// the tuple of approximation codes; like the single-column Grouping, the
// per-candidate group IDs are positionally aligned with the candidate set.
type MultiGrouping struct {
	Src     *Candidates
	Cols    []*bwd.Column
	IDs     []uint32
	NGroups int
	// Codes[k][g] is the approximation code of column k for group g.
	Codes   [][]uint64
	shipped bool
}

// GroupApproxMulti hash-groups the candidates by the code tuple of the
// given columns on the device. The write-conflict charge follows the same
// lanes-per-group serialization model as GroupApprox.
func GroupApproxMulti(m *device.Meter, cols []*bwd.Column, cands *Candidates) *MultiGrouping {
	n := len(cands.IDs)
	colCodes := make([][]uint64, len(cols))
	projected := make([]bool, len(cols))
	for k, col := range cols {
		if attached := cands.CodesFor(col); attached != nil {
			colCodes[k] = attached
			continue
		}
		p := ProjectApprox(m, col, cands)
		colCodes[k] = p.Codes
		projected[k] = true
	}
	// Combine code tuples into single hash keys; code widths are bounded
	// by the columns' approximation bits.
	idx := make(map[uint64]uint32, 64)
	ids := make([]uint32, n)
	var uniq []uint64
	shift := make([]uint, len(cols))
	var total uint
	for k := len(cols) - 1; k >= 0; k-- {
		shift[k] = total
		total += cols[k].Dec.ApproxBits
	}
	for i := 0; i < n; i++ {
		var key uint64
		for k := range cols {
			key |= colCodes[k][i] << shift[k]
		}
		g, ok := idx[key]
		if !ok {
			g = uint32(len(uniq))
			idx[key] = g
			uniq = append(uniq, key)
		}
		ids[i] = g
	}
	codes := make([][]uint64, len(cols))
	for k, col := range cols {
		codes[k] = make([]uint64, len(uniq))
		mask := uint64(1)<<col.Dec.ApproxBits - 1
		for g, key := range uniq {
			codes[k][g] = key >> shift[k] & mask
		}
	}
	for k := range colCodes {
		if projected[k] {
			mem.U64.Put(colCodes[k])
		}
	}
	if m != nil {
		lanes := float64(m.System().GPU.Threads)
		groups := float64(len(uniq))
		if groups < 1 {
			groups = 1
		}
		depth := lanes / groups
		if depth < 1 {
			depth = 1
		}
		var seq int64
		for _, col := range cols {
			seq += packedBytes(n, col.Dec.ApproxBits)
		}
		m.GPUKernel(seq+int64(n)*4, 0, int64(n)*bulk.OpsHashGroup+int64(float64(n)*depth))
	}
	return &MultiGrouping{Src: cands, Cols: cols, IDs: ids, NGroups: len(uniq), Codes: codes}
}

// Ship charges the transfer of the per-candidate group IDs and the group
// code table to the host.
func (g *MultiGrouping) Ship(m *device.Meter) {
	if g.shipped {
		return
	}
	g.shipped = true
	if m != nil {
		m.Transfer(int64(len(g.IDs))*4 + int64(g.NGroups*len(g.Cols))*8)
	}
}

// GroupRefineMulti produces the exact grouping of the refined subset plus
// the per-group key values of every grouping column.
//
// When every grouping column is fully device resident the pre-grouping is
// exact and only false positives are discharged (translucent join).
// Otherwise exact keys are re-derived from shipped codes and host
// residuals and the CPU regroups.
func GroupRefineMulti(m *device.Meter, threads int, g *MultiGrouping, refined *Candidates) (*bulk.Grouping, [][]int64, error) {
	return GroupRefineMultiPar(par.Bill(threads), m, g, refined)
}

// GroupRefineMultiPar is the morsel-parallel GroupRefineMulti: the
// exact-pre-grouping path densifies surviving group IDs with the shared
// block-partial first-appearance remap, and the decomposed path
// reconstructs key tuples per-morsel and regroups with the parallel
// multi-column grouping (charged here, not by the grouping kernel, so the
// simulated cost is unchanged).
func GroupRefineMultiPar(p par.P, m *device.Meter, g *MultiGrouping, refined *Candidates) (*bulk.Grouping, [][]int64, error) {
	pos, err := TranslucentJoinMetered(m, p.NThreads(), g.Src.IDs, refined.IDs)
	if err != nil {
		return nil, nil, err
	}
	exactPre := true
	for _, col := range g.Cols {
		if col.Dec.ResBits != 0 {
			exactPre = false
			break
		}
	}
	if exactPre {
		// Pass the pre-grouping through, dropping groups that lost all
		// their tuples to false-positive elimination.
		old := make([]uint32, len(pos))
		p.For(len(pos), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				old[i] = g.IDs[pos[i]]
			}
		})
		ids, used := remapFirstAppearance(p, old, g.NGroups)
		keys := make([][]int64, len(g.Cols))
		for k, col := range g.Cols {
			keys[k] = make([]int64, len(used))
			for newID, oldID := range used {
				keys[k][newID] = col.Dec.Base + int64(g.Codes[k][oldID])
			}
		}
		if m != nil {
			m.CPUWork(p.NThreads(), int64(len(pos))*8, 0, int64(len(pos)))
		}
		mem.Ints.Put(pos)
		return &bulk.Grouping{IDs: ids, NGroups: len(used), Keys: nil}, keys, nil
	}

	// Reconstruct exact key tuples and regroup on the CPU.
	n := len(pos)
	exact := make([][]int64, len(g.Cols))
	for k, col := range g.Cols {
		exact[k] = make([]int64, n)
		ek := exact[k]
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				code := g.Codes[k][g.IDs[pos[i]]]
				var r uint64
				if col.Dec.ResBits > 0 {
					r = col.Residual.Get(int(refined.IDs[i]))
				}
				ek[i] = col.ReconstructFrom(code, r)
			}
		})
		if m != nil {
			m.CPUWork(p.NThreads(), int64(n)*8, int64(n)*residualBytes(col.Dec.ResBits), int64(n))
		}
	}
	// Hash the exact tuples (unmetered kernel; charged below with the
	// historical group-refinement formula).
	grouping, keys := bulk.GroupByMultiPar(p, nil, exact)
	if m != nil {
		m.CPUWork(p.NThreads(), int64(n)*8*int64(len(g.Cols)), 0, int64(n)*bulk.OpsHashGroup)
	}
	mem.Ints.Put(pos)
	return grouping, keys, nil
}
