package ar

import (
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
)

// MultiGrouping is the device-side pre-grouping over several columns at
// once (TPC-H Q1 groups by l_returnflag, l_linestatus). Group identity is
// the tuple of approximation codes; like the single-column Grouping, the
// per-candidate group IDs are positionally aligned with the candidate set.
type MultiGrouping struct {
	Src     *Candidates
	Cols    []*bwd.Column
	IDs     []uint32
	NGroups int
	// Codes[k][g] is the approximation code of column k for group g.
	Codes   [][]uint64
	shipped bool
}

// GroupApproxMulti hash-groups the candidates by the code tuple of the
// given columns on the device. The write-conflict charge follows the same
// lanes-per-group serialization model as GroupApprox.
func GroupApproxMulti(m *device.Meter, cols []*bwd.Column, cands *Candidates) *MultiGrouping {
	n := len(cands.IDs)
	colCodes := make([][]uint64, len(cols))
	for k, col := range cols {
		if attached := cands.CodesFor(col); attached != nil {
			colCodes[k] = attached
			continue
		}
		p := ProjectApprox(m, col, cands)
		colCodes[k] = p.Codes
	}
	// Combine code tuples into single hash keys; code widths are bounded
	// by the columns' approximation bits.
	idx := make(map[uint64]uint32, 64)
	ids := make([]uint32, n)
	var uniq []uint64
	shift := make([]uint, len(cols))
	var total uint
	for k := len(cols) - 1; k >= 0; k-- {
		shift[k] = total
		total += cols[k].Dec.ApproxBits
	}
	for i := 0; i < n; i++ {
		var key uint64
		for k := range cols {
			key |= colCodes[k][i] << shift[k]
		}
		g, ok := idx[key]
		if !ok {
			g = uint32(len(uniq))
			idx[key] = g
			uniq = append(uniq, key)
		}
		ids[i] = g
	}
	codes := make([][]uint64, len(cols))
	for k, col := range cols {
		codes[k] = make([]uint64, len(uniq))
		mask := uint64(1)<<col.Dec.ApproxBits - 1
		for g, key := range uniq {
			codes[k][g] = key >> shift[k] & mask
		}
	}
	if m != nil {
		lanes := float64(m.System().GPU.Threads)
		groups := float64(len(uniq))
		if groups < 1 {
			groups = 1
		}
		depth := lanes / groups
		if depth < 1 {
			depth = 1
		}
		var seq int64
		for _, col := range cols {
			seq += packedBytes(n, col.Dec.ApproxBits)
		}
		m.GPUKernel(seq+int64(n)*4, 0, int64(n)*bulk.OpsHashGroup+int64(float64(n)*depth))
	}
	return &MultiGrouping{Src: cands, Cols: cols, IDs: ids, NGroups: len(uniq), Codes: codes}
}

// Ship charges the transfer of the per-candidate group IDs and the group
// code table to the host.
func (g *MultiGrouping) Ship(m *device.Meter) {
	if g.shipped {
		return
	}
	g.shipped = true
	if m != nil {
		m.Transfer(int64(len(g.IDs))*4 + int64(g.NGroups*len(g.Cols))*8)
	}
}

// GroupRefineMulti produces the exact grouping of the refined subset plus
// the per-group key values of every grouping column.
//
// When every grouping column is fully device resident the pre-grouping is
// exact and only false positives are discharged (translucent join).
// Otherwise exact keys are re-derived from shipped codes and host
// residuals and the CPU regroups.
func GroupRefineMulti(m *device.Meter, threads int, g *MultiGrouping, refined *Candidates) (*bulk.Grouping, [][]int64, error) {
	pos, err := TranslucentJoinMetered(m, threads, g.Src.IDs, refined.IDs)
	if err != nil {
		return nil, nil, err
	}
	exactPre := true
	for _, col := range g.Cols {
		if col.Dec.ResBits != 0 {
			exactPre = false
			break
		}
	}
	if exactPre {
		// Pass the pre-grouping through, dropping groups that lost all
		// their tuples to false-positive elimination.
		remap := make([]int32, g.NGroups)
		for i := range remap {
			remap[i] = -1
		}
		ids := make([]uint32, len(pos))
		next := uint32(0)
		var used []uint32
		for i, p := range pos {
			old := g.IDs[p]
			if remap[old] < 0 {
				remap[old] = int32(next)
				used = append(used, old)
				next++
			}
			ids[i] = uint32(remap[old])
		}
		keys := make([][]int64, len(g.Cols))
		for k, col := range g.Cols {
			keys[k] = make([]int64, len(used))
			for newID, old := range used {
				keys[k][newID] = col.Dec.Base + int64(g.Codes[k][old])
			}
		}
		if m != nil {
			m.CPUWork(threads, int64(len(pos))*8, 0, int64(len(pos)))
		}
		return &bulk.Grouping{IDs: ids, NGroups: len(used), Keys: nil}, keys, nil
	}

	// Reconstruct exact key tuples and regroup on the CPU.
	n := len(pos)
	exact := make([][]int64, len(g.Cols))
	for k, col := range g.Cols {
		exact[k] = make([]int64, n)
		for i, p := range pos {
			code := g.Codes[k][g.IDs[p]]
			var r uint64
			if col.Dec.ResBits > 0 {
				r = col.Residual.Get(int(refined.IDs[i]))
			}
			exact[k][i] = col.ReconstructFrom(code, r)
		}
		if m != nil {
			m.CPUWork(threads, int64(n)*8, int64(n)*residualBytes(col.Dec.ResBits), int64(n))
		}
	}
	// Hash the exact tuples.
	type slot struct{ id uint32 }
	idx := make(map[string]slot, 64)
	ids := make([]uint32, n)
	var order []int
	keyBuf := make([]byte, 0, len(g.Cols)*8)
	for i := 0; i < n; i++ {
		keyBuf = keyBuf[:0]
		for k := range g.Cols {
			v := uint64(exact[k][i])
			for s := 0; s < 8; s++ {
				keyBuf = append(keyBuf, byte(v>>(8*s)))
			}
		}
		s, ok := idx[string(keyBuf)]
		if !ok {
			s = slot{id: uint32(len(order))}
			idx[string(keyBuf)] = s
			order = append(order, i)
		}
		ids[i] = s.id
	}
	keys := make([][]int64, len(g.Cols))
	for k := range g.Cols {
		keys[k] = make([]int64, len(order))
		for gi, first := range order {
			keys[k][gi] = exact[k][first]
		}
	}
	if m != nil {
		m.CPUWork(threads, int64(n)*8*int64(len(g.Cols)), 0, int64(n)*bulk.OpsHashGroup)
	}
	return &bulk.Grouping{IDs: ids, NGroups: len(order), Keys: nil}, keys, nil
}
