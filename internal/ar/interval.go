package ar

import (
	"fmt"
	"math"
)

// Interval is a conservative value interval [Lo, Hi]: the approximate
// result of an arithmetic operator together with its strict error bounds
// (§III "Approximation": arithmetic operators yield the expected value and
// strict error bounds, which later operators use to relax predicate
// conditions appropriately).
type Interval struct {
	Lo, Hi int64
}

// Exact returns a degenerate interval holding a single value.
func Exact(v int64) Interval { return Interval{v, v} }

// IsExact reports whether the interval pins a single value.
func (iv Interval) IsExact() bool { return iv.Lo == iv.Hi }

// Width returns Hi - Lo, the residual uncertainty.
func (iv Interval) Width() int64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v int64) bool { return v >= iv.Lo && v <= iv.Hi }

// Mid returns the interval midpoint — the expected value reported for
// approximate answers.
func (iv Interval) Mid() int64 { return iv.Lo + (iv.Hi-iv.Lo)/2 }

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Add returns the interval of a+b.
func (iv Interval) Add(o Interval) Interval {
	return Interval{iv.Lo + o.Lo, iv.Hi + o.Hi}
}

// Sub returns the interval of a-b.
func (iv Interval) Sub(o Interval) Interval {
	return Interval{iv.Lo - o.Hi, iv.Hi - o.Lo}
}

// MulScaled returns the interval of the fixed-point product (a*b)/scale.
//
// Multiplication exhibits the paper's destructive distributivity (§IV-G):
// the expansion (a_ap+a_re)(b_ap+b_re) contains the cross terms
// a_ap·b_re and b_ap·a_re, which cannot be computed on either device
// alone, so the exact product can never be refined from the approximate
// product — only re-derived from reconstructed inputs. The interval result
// is still useful as an approximate answer and for relaxing downstream
// predicates; IsDestructive marks the limitation.
func (iv Interval) MulScaled(o Interval, scale int64) Interval {
	c := []int64{
		mulDiv(iv.Lo, o.Lo, scale),
		mulDiv(iv.Lo, o.Hi, scale),
		mulDiv(iv.Hi, o.Lo, scale),
		mulDiv(iv.Hi, o.Hi, scale),
	}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return Interval{lo, hi}
}

func mulDiv(a, b, scale int64) int64 { return a * b / scale }

// Div returns the interval of a/b (integer division). Intervals spanning
// zero in the divisor yield the unbounded-ish conservative result of the
// full int64 range, which callers must treat as "no information".
func (iv Interval) Div(o Interval) Interval {
	if o.Lo <= 0 && o.Hi >= 0 {
		return Interval{math.MinInt64, math.MaxInt64}
	}
	c := []int64{iv.Lo / o.Lo, iv.Lo / o.Hi, iv.Hi / o.Lo, iv.Hi / o.Hi}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return Interval{lo, hi}
}

// Sqrt returns the interval of the integer square root, defined for
// non-negative intervals; negative bounds are clamped to zero.
func (iv Interval) Sqrt() Interval {
	lo, hi := iv.Lo, iv.Hi
	if lo < 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	return Interval{isqrt(lo), isqrt(hi)}
}

func isqrt(v int64) int64 {
	if v < 0 {
		return 0
	}
	r := int64(math.Sqrt(float64(v)))
	for r*r > v {
		r--
	}
	for (r+1)*(r+1) <= v {
		r++
	}
	return r
}

// Pow returns the interval of v^e for small non-negative integer
// exponents.
func (iv Interval) Pow(e uint) Interval {
	if e == 0 {
		return Exact(1)
	}
	out := iv
	for i := uint(1); i < e; i++ {
		out = out.MulScaled(iv, 1)
	}
	// Even powers of intervals spanning zero bottom out at 0.
	if e%2 == 0 && iv.Lo < 0 && iv.Hi > 0 && out.Lo > 0 {
		out.Lo = 0
	}
	return out
}

// IsDestructive reports whether an operation's exact result cannot be
// refined from the approximations and residuals independently (§IV-G).
// Addition and subtraction distribute over the approximation/residual
// split; multiplication, division and their derivatives do not.
func IsDestructive(op string) bool {
	switch op {
	case "add", "sub":
		return false
	case "mul", "div", "sqrt", "pow":
		return true
	default:
		return true // conservative: unknown UDFs refine on the CPU
	}
}
