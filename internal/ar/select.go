package ar

import (
	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/par"
)

// gpuChunk is the tuple count per simulated device work-group.
const gpuChunk = 64 << 10

// OpsPackedScan is the per-tuple operation count of a JIT-generated packed
// selection kernel: unpacking a bit-packed code straddling word boundaries,
// masking, shifting and evaluating the relaxed predicate. It makes wide
// scans compute-bound on the device, which is what the paper's untuned
// kernels observably were (their approximation times barely vary with the
// packed width, Fig 8c).
const OpsPackedScan = 6

type idCode struct {
	id   bat.OID
	code uint64
}

// SelectApprox is the approximation of a selection on a bitwise decomposed
// column (§IV-B): the device scans the bit-packed approximation with the
// relaxed predicate r and emits every tuple whose approximation code
// matches — a superset of the exact result. The output order is a
// deterministic permutation of the input order, modelling the
// non-order-preserving massively parallel kernel (§IV-A item 3).
//
// The candidate codes ride along with the IDs; they are the host's only
// view of the device-resident major bits once the candidates are shipped.
func SelectApprox(m *device.Meter, col *bwd.Column, r bwd.ApproxRange) *Candidates {
	n := col.Len()
	var pairs []idCode
	switch {
	case r.Empty:
		pairs = nil
	default:
		pairs = par.Gather(n, gpuChunk, 0, false, func(lo, hi int) []idCode {
			out := make([]idCode, 0, (hi-lo)/4)
			for i := lo; i < hi; i++ {
				code := col.Approx.Get(i)
				if r.Contains(code) {
					out = append(out, idCode{bat.OID(i), code})
				}
			}
			return out
		})
	}
	c := &Candidates{IDs: make([]bat.OID, len(pairs))}
	codes := make([]uint64, len(pairs))
	for i, p := range pairs {
		c.IDs[i] = p.id
		codes[i] = p.code
	}
	c.attach = []attachment{{col: col, codes: codes, rng: r, filtered: true}}
	if m != nil {
		scanned := col.Approx.Bytes()
		written := int64(len(pairs))*4 + packedBytes(len(pairs), col.Dec.ApproxBits)
		m.GPUKernel(scanned+written, 0, int64(n)*OpsPackedScan)
	}
	return c
}

// SelectApproxOver narrows an existing candidate set with a further relaxed
// predicate on another column (conjunctive selections, e.g. the two
// BETWEENs of the spatial range query). The device gathers col's codes at
// the candidate positions and keeps the matches, preserving candidate
// order so later translucent joins remain valid.
func SelectApproxOver(m *device.Meter, col *bwd.Column, r bwd.ApproxRange, in *Candidates) *Candidates {
	keep := make([]int, 0, len(in.IDs))
	codes := make([]uint64, 0, len(in.IDs))
	if !r.Empty {
		for i, id := range in.IDs {
			code := col.Approx.Get(int(id))
			if r.Contains(code) {
				keep = append(keep, i)
				codes = append(codes, code)
			}
		}
	}
	out := in.filterTo(keep)
	out.shipped = false // a fresh device-side intermediate
	out.attach = append(out.attach, attachment{col: col, codes: codes, rng: r, filtered: true})
	if m != nil {
		n := len(in.IDs)
		seq := int64(n)*4 + int64(len(keep))*4 + packedBytes(len(keep), col.Dec.ApproxBits)
		m.GPUKernel(seq, packedBytes(n, col.Dec.ApproxBits), int64(n)*OpsPackedScan)
	}
	return out
}

// SelectRefine is the refinement of a selection (Algorithm 2): on the CPU,
// each candidate's exact value is reconstructed by bitwise concatenation
// of its shipped approximation code and its host-resident residual, the
// precise predicate lo <= v <= hi is re-evaluated, and false positives are
// eliminated. The translucent join with the residual and the re-evaluation
// are fused into one loop, as the paper prescribes; because the residual
// is a persistent column with dense IDs, that join takes the invisible
// (positional) fast path.
//
// The result preserves candidate order and compacts every attached code
// column, so further refinements on other columns can run directly on it.
// The exact values of col for the surviving candidates are returned
// alongside.
func SelectRefine(m *device.Meter, threads int, col *bwd.Column, lo, hi int64, in *Candidates) (*Candidates, []int64) {
	return SelectRefinePar(par.Bill(threads), m, col, lo, hi, in)
}

// keepVal pairs a surviving candidate position with its reconstructed
// exact value, so one ordered morsel gather keeps both aligned.
type keepVal struct {
	i int
	v int64
}

// SelectRefinePar is the morsel-parallel SelectRefine: morsels reconstruct
// and re-evaluate independently, and their survivors concatenate in morsel
// order, preserving candidate order exactly like the serial loop.
func SelectRefinePar(p par.P, m *device.Meter, col *bwd.Column, lo, hi int64, in *Candidates) (*Candidates, []int64) {
	codes := in.CodesFor(col)
	if codes == nil {
		panic("ar: SelectRefine on a column that was never approximated over these candidates")
	}
	n := len(in.IDs)
	res := col.Residual
	resBits := col.Dec.ResBits
	pairs := par.GatherOrdered(p, n, func(mlo, mhi int) []keepVal {
		part := make([]keepVal, 0, mhi-mlo)
		for i := mlo; i < mhi; i++ {
			var r uint64
			if resBits > 0 {
				r = res.Get(int(in.IDs[i]))
			}
			v := col.ReconstructFrom(codes[i], r)
			if v >= lo && v <= hi {
				part = append(part, keepVal{i, v})
			}
		}
		return part
	})
	keep := make([]int, len(pairs))
	vals := make([]int64, len(pairs))
	for i, kv := range pairs {
		keep[i] = kv.i
		vals[i] = kv.v
	}
	out := in.filterTo(keep)
	if m != nil && resBits > 0 {
		// §IV-C: fully device-resident data needs no refinement — exact
		// codes admit no false positives, so that case charges nothing
		// (the candidate list already is the result). Otherwise the fused
		// loop streams IDs and codes and touches the residual at candidate
		// order: cache-line-bounded when sparse, array-bounded when dense.
		resFetch := device.RandomFetchBytes(int64(n), residualBytes(resBits), col.Residual.Bytes())
		seq := int64(n)*4 + packedBytes(n, col.Dec.ApproxBits) +
			resFetch + int64(len(keep))*4
		m.CPUWork(p.NThreads(), seq, 0, int64(n)*2)
	}
	return out, vals
}

// ReconstructAll materializes the exact values of col for every candidate,
// without filtering: the degenerate "selection refinement without a
// predicate" the paper equates with projection refinement (§IV-C).
func ReconstructAll(m *device.Meter, threads int, col *bwd.Column, in *Candidates) []int64 {
	return ReconstructAllPar(par.Bill(threads), m, col, in)
}

// ReconstructAllPar is the morsel-parallel ReconstructAll: every worker
// writes a disjoint slice of the output, so alignment is free.
func ReconstructAllPar(p par.P, m *device.Meter, col *bwd.Column, in *Candidates) []int64 {
	codes := in.CodesFor(col)
	if codes == nil {
		panic("ar: ReconstructAll on a column without attached codes")
	}
	n := len(in.IDs)
	vals := make([]int64, n)
	p.For(n, func(mlo, mhi int) {
		for i := mlo; i < mhi; i++ {
			var r uint64
			if col.Dec.ResBits > 0 {
				r = col.Residual.Get(int(in.IDs[i]))
			}
			vals[i] = col.ReconstructFrom(codes[i], r)
		}
	})
	if m != nil && col.Dec.ResBits > 0 {
		resFetch := device.RandomFetchBytes(int64(n), residualBytes(col.Dec.ResBits), col.Residual.Bytes())
		seq := int64(n)*4 + packedBytes(n, col.Dec.ApproxBits) + resFetch + int64(n)*8
		m.CPUWork(p.NThreads(), seq, 0, int64(n))
	}
	return vals
}
