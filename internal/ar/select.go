package ar

import (
	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/par"
)

// gpuChunk is the tuple count per simulated device work-group.
const gpuChunk = 64 << 10

// OpsPackedScan is the per-tuple operation count of a JIT-generated packed
// selection kernel: unpacking a bit-packed code straddling word boundaries,
// masking, shifting and evaluating the relaxed predicate. It makes wide
// scans compute-bound on the device, which is what the paper's untuned
// kernels observably were (their approximation times barely vary with the
// packed width, Fig 8c).
const OpsPackedScan = 6

// SelectApprox is the approximation of a selection on a bitwise decomposed
// column (§IV-B): the device scans the bit-packed approximation with the
// relaxed predicate r and emits every tuple whose approximation code
// matches — a superset of the exact result. The output order is a
// deterministic permutation of the input order, modelling the
// non-order-preserving massively parallel kernel (§IV-A item 3).
//
// The candidate codes ride along with the IDs; they are the host's only
// view of the device-resident major bits once the candidates are shipped.
//
// Host-side, the scan is word-parallel and allocation-free: each worker
// decodes a work-group into its morsel scratch with bitpack.UnpackRange
// (word-at-a-time instead of branch-and-shift per element), writes matches
// into its own disjoint region of arena buffers, and the regions are
// concatenated in the deterministic device permutation.
func SelectApprox(m *device.Meter, col *bwd.Column, r bwd.ApproxRange) *Candidates {
	n := col.Len()
	c := getCandidates()
	total := 0
	if !r.Empty && n > 0 {
		nchunks := (n + gpuChunk - 1) / gpuChunk
		idsBuf := oidPool.GetN(n)
		codesBuf := mem.U64.GetN(n)
		counts := mem.Ints.GetN(nchunks)
		if nchunks == 1 {
			// One work-group: run it on the calling goroutine without
			// materializing a closure, keeping the scan allocation-free.
			s := mem.GetScratch()
			counts[0] = scanGroup(s, col, r, idsBuf, codesBuf, 0, n)
			mem.PutScratch(s)
		} else {
			par.ForScratch(n, gpuChunk, 0, func(s *mem.Scratch, lo, hi int) {
				counts[lo/gpuChunk] = scanGroup(s, col, r, idsBuf, codesBuf, lo, hi)
			})
		}
		for _, cnt := range counts {
			total += cnt
		}
		// Concatenate the per-group regions in the deterministic shuffled
		// completion order — the unordered device discipline.
		order := par.PermuteInto(mem.Ints.GetN(nchunks))
		ids := oidPool.GetN(total)
		codes := mem.U64.GetN(total)
		off := 0
		for _, ci := range order {
			cnt := counts[ci]
			lo := ci * gpuChunk
			copy(ids[off:off+cnt], idsBuf[lo:lo+cnt])
			copy(codes[off:off+cnt], codesBuf[lo:lo+cnt])
			off += cnt
		}
		mem.Ints.Put(order)
		mem.Ints.Put(counts)
		oidPool.Put(idsBuf)
		mem.U64.Put(codesBuf)
		c.IDs = ids
		c.attach = append(c.attach, attachment{col: col, codes: codes, rng: r, filtered: true})
	} else {
		c.IDs = oidPool.GetN(0)
		c.attach = append(c.attach, attachment{col: col, codes: mem.U64.GetN(0), rng: r, filtered: true})
	}
	if m != nil {
		scanned := col.Approx.Bytes()
		written := int64(total)*4 + packedBytes(total, col.Dec.ApproxBits)
		m.GPUKernel(scanned+written, 0, int64(n)*OpsPackedScan)
	}
	return c
}

// scanGroup decodes one device work-group [lo,hi) into the worker scratch
// and writes the matching (id, code) pairs into the group's disjoint
// region of the output buffers, returning the match count.
func scanGroup(s *mem.Scratch, col *bwd.Column, r bwd.ApproxRange, idsBuf []bat.OID, codesBuf []uint64, lo, hi int) int {
	dec := col.Approx.UnpackRange(s.U64(hi - lo)[:0], lo, hi)
	cnt := 0
	for j, code := range dec {
		if r.Contains(code) {
			idsBuf[lo+cnt] = bat.OID(lo + j)
			codesBuf[lo+cnt] = code
			cnt++
		}
	}
	return cnt
}

// SelectApproxOver narrows an existing candidate set with a further relaxed
// predicate on another column (conjunctive selections, e.g. the two
// BETWEENs of the spatial range query). The device gathers col's codes at
// the candidate positions and keeps the matches, preserving candidate
// order so later translucent joins remain valid.
func SelectApproxOver(m *device.Meter, col *bwd.Column, r bwd.ApproxRange, in *Candidates) *Candidates {
	keep := mem.Ints.Get(len(in.IDs))
	codes := mem.U64.Get(len(in.IDs))
	if !r.Empty {
		for i, id := range in.IDs {
			code := col.Approx.Get(int(id))
			if r.Contains(code) {
				keep = append(keep, i)
				codes = append(codes, code)
			}
		}
	}
	out := in.filterTo(keep)
	out.shipped = false // a fresh device-side intermediate
	out.attach = append(out.attach, attachment{col: col, codes: codes, rng: r, filtered: true})
	if m != nil {
		n := len(in.IDs)
		seq := int64(n)*4 + int64(len(keep))*4 + packedBytes(len(keep), col.Dec.ApproxBits)
		m.GPUKernel(seq, packedBytes(n, col.Dec.ApproxBits), int64(n)*OpsPackedScan)
	}
	mem.Ints.Put(keep)
	return out
}

// SelectRefine is the refinement of a selection (Algorithm 2): on the CPU,
// each candidate's exact value is reconstructed by bitwise concatenation
// of its shipped approximation code and its host-resident residual, the
// precise predicate lo <= v <= hi is re-evaluated, and false positives are
// eliminated. The translucent join with the residual and the re-evaluation
// are fused into one loop, as the paper prescribes; because the residual
// is a persistent column with dense IDs, that join takes the invisible
// (positional) fast path.
//
// The result preserves candidate order and compacts every attached code
// column, so further refinements on other columns can run directly on it.
// The exact values of col for the surviving candidates are returned
// alongside.
func SelectRefine(m *device.Meter, threads int, col *bwd.Column, lo, hi int64, in *Candidates) (*Candidates, []int64) {
	return SelectRefinePar(par.Bill(threads), m, col, lo, hi, in)
}

// SelectRefinePar is the morsel-parallel SelectRefine: morsels reconstruct
// and re-evaluate independently, each writing survivors into its own
// disjoint region of arena buffers (positions and values stay aligned),
// and the regions left-pack in morsel order — the same candidate order as
// the serial loop, with zero allocations in steady state. The returned
// value slice is arena-backed; ownership passes to the caller.
func SelectRefinePar(p par.P, m *device.Meter, col *bwd.Column, lo, hi int64, in *Candidates) (*Candidates, []int64) {
	codes := in.CodesFor(col)
	if codes == nil {
		panic("ar: SelectRefine on a column that was never approximated over these candidates")
	}
	n := len(in.IDs)
	keepBuf := mem.Ints.GetN(n)
	valsBuf := mem.I64.GetN(n)
	chunk := p.ChunkSize()
	nchunks := (n + chunk - 1) / chunk
	var counts []int
	var err error
	if p.NWorkers() <= 1 {
		// Single worker: run the morsels on the calling goroutine without
		// materializing a closure — the refinement's steady state allocates
		// nothing.
		counts = mem.Ints.GetN(nchunks)
		for ci := 0; ci < nchunks; ci++ {
			if err = p.Cancelled(); err != nil {
				break
			}
			mlo := ci * chunk
			mhi := mlo + chunk
			if mhi > n {
				mhi = n
			}
			counts[ci] = refineMorsel(col, codes, in.IDs, lo, hi, keepBuf, valsBuf, mlo, mhi)
		}
		if err != nil {
			mem.Ints.Put(counts)
			counts = nil
		}
	} else {
		counts, _, err = par.ForCounted(p, n, func(_ *mem.Scratch, _, mlo, mhi int) int {
			return refineMorsel(col, codes, in.IDs, lo, hi, keepBuf, valsBuf, mlo, mhi)
		})
	}
	var keep []int
	var vals []int64
	if err != nil {
		// Cancelled mid-pass: the executor discards the result at its next
		// checkpoint, so an empty survivor set stands in for the partial.
		keep, vals = keepBuf[:0], valsBuf[:0]
	} else {
		keep = par.Compact(counts, chunk, keepBuf)
		vals = par.Compact(counts, chunk, valsBuf)
		mem.Ints.Put(counts)
	}
	out := in.filterTo(keep)
	mem.Ints.Put(keepBuf)
	if m != nil && col.Dec.ResBits > 0 {
		// §IV-C: fully device-resident data needs no refinement — exact
		// codes admit no false positives, so that case charges nothing
		// (the candidate list already is the result). Otherwise the fused
		// loop streams IDs and codes and touches the residual at candidate
		// order: cache-line-bounded when sparse, array-bounded when dense.
		resFetch := device.RandomFetchBytes(int64(n), residualBytes(col.Dec.ResBits), col.Residual.Bytes())
		seq := int64(n)*4 + packedBytes(n, col.Dec.ApproxBits) +
			resFetch + int64(len(keep))*4
		m.CPUWork(p.NThreads(), seq, 0, int64(n)*2)
	}
	return out, vals
}

// ReconstructAll materializes the exact values of col for every candidate,
// without filtering: the degenerate "selection refinement without a
// predicate" the paper equates with projection refinement (§IV-C).
func ReconstructAll(m *device.Meter, threads int, col *bwd.Column, in *Candidates) []int64 {
	return ReconstructAllPar(par.Bill(threads), m, col, in)
}

// ReconstructAllPar is the morsel-parallel ReconstructAll: every worker
// writes a disjoint slice of the output, so alignment is free. The
// returned slice is arena-backed; ownership passes to the caller.
func ReconstructAllPar(p par.P, m *device.Meter, col *bwd.Column, in *Candidates) []int64 {
	codes := in.CodesFor(col)
	if codes == nil {
		panic("ar: ReconstructAll on a column without attached codes")
	}
	n := len(in.IDs)
	vals := mem.I64.GetN(n)
	if p.NWorkers() <= 1 {
		reconstructRange(col, codes, in.IDs, vals, 0, n)
	} else {
		p.For(n, func(mlo, mhi int) {
			reconstructRange(col, codes, in.IDs, vals, mlo, mhi)
		})
	}
	if m != nil && col.Dec.ResBits > 0 {
		resFetch := device.RandomFetchBytes(int64(n), residualBytes(col.Dec.ResBits), col.Residual.Bytes())
		seq := int64(n)*4 + packedBytes(n, col.Dec.ApproxBits) + resFetch + int64(n)*8
		m.CPUWork(p.NThreads(), seq, 0, int64(n))
	}
	return vals
}

// refineMorsel reconstructs and re-evaluates one morsel of candidates,
// writing survivor indices and exact values into the morsel's disjoint
// region [mlo, mlo+count) of the overallocated buffers. A named function
// (not a closure) so the single-worker path allocates nothing.
func refineMorsel(col *bwd.Column, codes []uint64, ids []bat.OID, lo, hi int64, keepBuf []int, valsBuf []int64, mlo, mhi int) int {
	res := col.Residual
	resBits := col.Dec.ResBits
	cnt := 0
	for i := mlo; i < mhi; i++ {
		var r uint64
		if resBits > 0 {
			r = res.Get(int(ids[i]))
		}
		v := col.ReconstructFrom(codes[i], r)
		if v >= lo && v <= hi {
			keepBuf[mlo+cnt] = i
			valsBuf[mlo+cnt] = v
			cnt++
		}
	}
	return cnt
}

// reconstructRange materializes exact values for candidates [mlo, mhi).
func reconstructRange(col *bwd.Column, codes []uint64, ids []bat.OID, vals []int64, mlo, mhi int) {
	for i := mlo; i < mhi; i++ {
		var r uint64
		if col.Dec.ResBits > 0 {
			r = col.Residual.Get(int(ids[i]))
		}
		vals[i] = col.ReconstructFrom(codes[i], r)
	}
}
