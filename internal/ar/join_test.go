package ar

import (
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/device"
)

func TestFKPositionsApproxDensePK(t *testing.T) {
	// Dimension with dense PK 1..100; fact rows carry FKs into it.
	dimLen := 100
	rng := rand.New(rand.NewSource(60))
	n := 5000
	fk := make([]int64, n)
	for i := range fk {
		fk[i] = int64(rng.Intn(dimLen)) + 1
	}
	sel := shuffledInts(n, 61)
	fkCol := decompose(t, fk, 32) // fully resident: join allowed
	selCol := decompose(t, sel, 8)

	cands := SelectApprox(nil, selCol, selCol.Relax(100, 3000))
	pos, err := FKPositionsApprox(nil, fkCol, cands, 1, dimLen)
	if err != nil {
		t.Fatalf("FKPositionsApprox: %v", err)
	}
	for i, id := range cands.IDs {
		if int64(pos[i]) != fk[id]-1 {
			t.Fatalf("position for candidate %d = %d, want %d", id, pos[i], fk[id]-1)
		}
	}
}

func TestFKPositionsApproxRejectsDecomposedKey(t *testing.T) {
	fk := shuffledInts(5000, 62)
	fkCol := decompose(t, fk, 6) // decomposed: approximate keys
	selCol := decompose(t, shuffledInts(5000, 63), 8)
	cands := SelectApprox(nil, selCol, selCol.Relax(0, 100))
	if _, err := FKPositionsApprox(nil, fkCol, cands, 0, 5000); err == nil {
		t.Error("decomposed key column accepted for device FK join")
	}
}

func TestFKPositionsApproxDanglingKey(t *testing.T) {
	fk := []int64{1, 2, 99}
	fkCol := decompose(t, fk, 32)
	cands := &Candidates{IDs: []bat.OID{0, 1, 2}}
	if _, err := FKPositionsApprox(nil, fkCol, cands, 1, 10); err == nil {
		t.Error("dangling FK not detected")
	}
}

func TestFKPositionsRefineMatchesApprox(t *testing.T) {
	dimLen := 64
	rng := rand.New(rand.NewSource(64))
	n := 3000
	fk := make([]int64, n)
	for i := range fk {
		fk[i] = int64(rng.Intn(dimLen)) + 1
	}
	sel := shuffledInts(n, 65)
	fkResident := decompose(t, fk, 32)
	fkSplit := decompose(t, fk, 3) // CPU fallback path
	selCol := decompose(t, sel, 8)

	pk := make([]int64, dimLen)
	for i := range pk {
		pk[i] = int64(i) + 1
	}
	ix := bulk.BuildFKIndex(nil, 1, pk)
	if ix == nil {
		t.Fatal("BuildFKIndex failed")
	}

	cands := SelectApprox(nil, selCol, selCol.Relax(0, 1500))
	// Attach the split FK codes so the refinement can reconstruct.
	pa := ProjectApprox(nil, fkSplit, cands)
	cands.attach = append(cands.attach, attachment{col: fkSplit, codes: pa.Codes})

	refined, _ := SelectRefine(nil, 1, selCol, 0, 1500, cands)
	gotRefine, err := FKPositionsRefine(nil, 1, fkSplit, refined, ix)
	if err != nil {
		t.Fatalf("FKPositionsRefine: %v", err)
	}
	wantApprox, err := FKPositionsApprox(nil, fkResident, refined, 1, dimLen)
	if err != nil {
		t.Fatalf("FKPositionsApprox: %v", err)
	}
	for i := range gotRefine {
		if gotRefine[i] != wantApprox[i] {
			t.Fatalf("refined FK position %d = %d, want %d", i, gotRefine[i], wantApprox[i])
		}
	}
}

func TestThetaJoinApproxRefineMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 20; trial++ {
		nl, nr := rng.Intn(60)+1, rng.Intn(60)+1
		left := make([]int64, nl)
		right := make([]int64, nr)
		for i := range left {
			left[i] = int64(rng.Intn(1000))
		}
		for i := range right {
			right[i] = int64(rng.Intn(1000))
		}
		lCol := decompose(t, left, uint(3+trial%8))
		rCol := decompose(t, right, uint(3+(trial/2)%8))

		lids, rids := ThetaJoinApprox(nil, lCol, rCol)
		outL, outR := ThetaJoinRefine(nil, 1, lCol, rCol, lids, rids)

		// Ground truth nested loop.
		want := 0
		for _, lv := range left {
			for _, rv := range right {
				if lv < rv {
					want++
				}
			}
		}
		if len(outL) != want {
			t.Fatalf("trial %d: theta join size = %d, want %d", trial, len(outL), want)
		}
		for k := range outL {
			if left[outL[k]] >= right[outR[k]] {
				t.Fatalf("trial %d: pair (%d,%d) violates predicate", trial, outL[k], outR[k])
			}
		}
	}
}

func TestThetaJoinChargesGPUForApproxCPUForRefine(t *testing.T) {
	sys := device.PaperSystem()
	m := device.NewMeter(sys)
	left := shuffledInts(100, 67)
	right := shuffledInts(100, 68)
	lCol := decompose(t, left, 5)
	rCol := decompose(t, right, 5)
	lids, rids := ThetaJoinApprox(m, lCol, rCol)
	if m.GPU == 0 {
		t.Error("theta approximation charged no GPU time")
	}
	ThetaJoinRefine(m, 1, lCol, rCol, lids, rids)
	if m.CPU == 0 {
		t.Error("theta refinement charged no CPU time")
	}
}
