package ar

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/mem"
)

// FKPositionsApprox computes, on the device, the dimension-table positions
// joined by a foreign-key column for every candidate: the approximate side
// of the paper's foreign-key join (§IV-D).
//
// The paper deliberately does not attempt generic hash joins on the device
// (massively parallel hash builds serialize on conflicting writes) and
// instead relies on a pre-built foreign-key index, which turns the join
// into a projective join. With the dense primary keys of dimension tables
// the index is positional: dimension position = fk − pkBase. This requires
// the foreign-key column to be fully device resident (ResBits == 0): an
// approximate key cannot address an exact position. Decomposed key columns
// must fall back to the CPU join path, which mirrors the paper's own
// restriction ("we leave support for unindexed joins on the GPU for future
// work").
func FKPositionsApprox(m *device.Meter, fkCol *bwd.Column, cands *Candidates, pkBase int64, dimLen int) ([]bat.OID, error) {
	if fkCol.Dec.ResBits != 0 {
		return nil, fmt.Errorf("ar: FK join needs a fully device-resident key column, got %v", fkCol.Dec)
	}
	out := oidPool.GetN(len(cands.IDs))
	for i, id := range cands.IDs {
		fk := fkCol.Dec.Base + int64(fkCol.Approx.Get(int(id)))
		pos := fk - pkBase
		if pos < 0 || pos >= int64(dimLen) {
			return nil, fmt.Errorf("ar: dangling foreign key %d outside dimension [%d,%d)", fk, pkBase, pkBase+int64(dimLen))
		}
		out[i] = bat.OID(pos)
	}
	if m != nil {
		n := len(cands.IDs)
		seq := int64(n) * 8 // read ids, write positions
		m.GPUKernel(seq, packedBytes(n, fkCol.Dec.ApproxBits), int64(n)*bulk.OpsHashProbe)
	}
	return out, nil
}

// FKPositionsRefine recomputes the joined dimension positions on the CPU
// for a refined candidate subset, using the host-side foreign-key index.
// It is the CPU fallback for decomposed key columns and the refinement
// counterpart of FKPositionsApprox.
func FKPositionsRefine(m *device.Meter, threads int, fkCol *bwd.Column, refined *Candidates, ix *bulk.FKIndex) ([]bat.OID, error) {
	vals := ReconstructAll(m, threads, fkCol, refined)
	out := oidPool.GetN(len(vals))
	for i, fk := range vals {
		pos, ok := ix.Lookup(fk)
		if !ok {
			mem.I64.Put(vals)
			return nil, fmt.Errorf("ar: dangling foreign key %d", fk)
		}
		out[i] = pos
	}
	mem.I64.Put(vals)
	if m != nil {
		m.CPUWork(threads, int64(len(vals))*8, int64(len(vals))*4,
			int64(len(vals))*bulk.OpsHashProbe)
	}
	return out, nil
}

// ThetaJoinApprox is the approximate side of a non-equi (theta) join,
// which §IV-D singles out as a natural device workload: a nested-loop scan
// that is bandwidth-hungry and trivially parallel because it needs no
// shared build structure. It returns all candidate pairs (li, ri) whose
// approximation intervals could satisfy `left.value < right.value` — a
// superset of the exact result.
//
// The candidate pairs must be refined with ThetaJoinRefine; the paper
// notes only one side can keep its permutation through a translucent join,
// so the refinement re-verifies pairs directly.
func ThetaJoinApprox(m *device.Meter, left, right *bwd.Column) (lids, rids []bat.OID) {
	for i := 0; i < left.Len(); i++ {
		lLow := left.Dec.Base + int64(left.Approx.Get(i)<<left.Dec.ResBits)
		for j := 0; j < right.Len(); j++ {
			rLow := right.Dec.Base + int64(right.Approx.Get(j)<<right.Dec.ResBits)
			rHi := rLow + right.Dec.Err()
			// left < right is possible iff min(left interval) < max(right
			// interval).
			if lLow < rHi {
				lids = append(lids, bat.OID(i))
				rids = append(rids, bat.OID(j))
			}
		}
	}
	if m != nil {
		n := int64(left.Len()) * int64(right.Len())
		m.GPUKernel(packedBytes(left.Len(), left.Dec.ApproxBits)+
			packedBytes(right.Len(), right.Dec.ApproxBits)*int64(left.Len()),
			0, n)
	}
	return lids, rids
}

// ThetaJoinRefine eliminates false-positive pairs by reconstructing both
// sides' exact values on the CPU and re-evaluating `left < right`.
func ThetaJoinRefine(m *device.Meter, threads int, left, right *bwd.Column, lids, rids []bat.OID) (outL, outR []bat.OID) {
	for k := range lids {
		lv := left.Reconstruct(int(lids[k]))
		rv := right.Reconstruct(int(rids[k]))
		if lv < rv {
			outL = append(outL, lids[k])
			outR = append(outR, rids[k])
		}
	}
	if m != nil {
		n := int64(len(lids))
		m.CPUWork(threads, n*8,
			n*(residualBytes(left.Dec.ResBits)+residualBytes(right.Dec.ResBits)), n*2)
	}
	return outL, outR
}
