package ar

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/device"
)

// pipeline builds the canonical two-column plan of Fig 3: select on one
// column, project another.
func TestProjectApproxRefineMatchesBulk(t *testing.T) {
	n := 30000
	dates := shuffledInts(n, 20)
	prices := shuffledInts(n, 21)
	dateCol := decompose(t, dates, 9)
	priceCol := decompose(t, prices, 9)

	lo, hi := int64(5000), int64(12000)
	cands := SelectApprox(nil, dateCol, dateCol.Relax(lo, hi))
	proj := ProjectApprox(nil, priceCol, cands)
	cands.Ship(nil)
	proj.Ship(nil)
	refined, _ := SelectRefine(nil, 1, dateCol, lo, hi, cands)
	got, err := ProjectRefine(nil, 1, proj, refined)
	if err != nil {
		t.Fatalf("ProjectRefine: %v", err)
	}

	// Baseline: bulk select then fetch.
	ids := bulk.SelectRange(nil, 1, bat.NewDense(dates, bat.Width32), lo, hi)
	wantVals := bulk.Fetch(nil, 1, bat.NewDense(prices, bat.Width32), ids)

	if len(got) != len(wantVals) {
		t.Fatalf("projection size = %d, want %d", len(got), len(wantVals))
	}
	// Compare as multisets keyed by tuple id (orders differ).
	byID := make(map[bat.OID]int64, len(refined.IDs))
	for i, id := range refined.IDs {
		byID[id] = got[i]
	}
	for i, id := range ids {
		if byID[id] != wantVals[i] {
			t.Fatalf("projected value for id %d = %d, want %d", id, byID[id], wantVals[i])
		}
	}
}

func TestProjectRefineUsesTranslucentJoin(t *testing.T) {
	// The refined set is a strict subset in the same permuted order: the
	// merge path of Algorithm 1 must resolve it.
	n := 5000
	a := shuffledInts(n, 22)
	b := shuffledInts(n, 23)
	colA := decompose(t, a, 6)
	colB := decompose(t, b, 6)

	cands := SelectApprox(nil, colA, colA.Relax(100, 2500))
	proj := ProjectApprox(nil, colB, cands)
	refined, _ := SelectRefine(nil, 1, colA, 100, 2500, cands)
	if len(refined.IDs) == cands.Len() {
		t.Fatal("test needs false positives to be meaningful")
	}
	got, err := ProjectRefine(nil, 1, proj, refined)
	if err != nil {
		t.Fatalf("ProjectRefine: %v", err)
	}
	for i, id := range refined.IDs {
		if got[i] != b[id] {
			t.Fatalf("value for id %d = %d, want %d", id, got[i], b[id])
		}
	}
}

func TestProjectRefineRejectsForeignSubset(t *testing.T) {
	n := 1000
	a := shuffledInts(n, 24)
	colA := decompose(t, a, 6)
	cands := SelectApprox(nil, colA, colA.Relax(0, 100))
	proj := ProjectApprox(nil, colA, cands)
	// A candidate set that is NOT a subset of the projection's source.
	foreign := &Candidates{IDs: []bat.OID{bat.OID(n - 1), 0}}
	if cands.Len() < 2 {
		t.Skip("not enough candidates")
	}
	if _, err := ProjectRefine(nil, 1, proj, foreign); err == nil {
		t.Error("foreign subset accepted by translucent join")
	}
}

func TestProjectExactFlag(t *testing.T) {
	n := 1000
	vals := shuffledInts(n, 25)
	resident := decompose(t, vals, 32)
	split := decompose(t, vals, 5)
	cands := SelectApprox(nil, resident, resident.Relax(0, 100))
	if !ProjectApprox(nil, resident, cands).Exact() {
		t.Error("fully resident projection not Exact")
	}
	cands2 := SelectApprox(nil, split, split.Relax(0, 100))
	if ProjectApprox(nil, split, cands2).Exact() {
		t.Error("decomposed projection claims Exact")
	}
}

func TestProjectApproxAt(t *testing.T) {
	// Dimension projection through explicit positions (FK join path).
	dim := []int64{100, 200, 300, 400}
	dimCol := decompose(t, dim, 32)
	fact := shuffledInts(100, 26)
	factCol := decompose(t, fact, 32)
	cands := SelectApprox(nil, factCol, factCol.Relax(0, 99))
	at := make([]bat.OID, cands.Len())
	for i := range at {
		at[i] = bat.OID(int(cands.IDs[i]) % len(dim))
	}
	proj := ProjectApproxAt(nil, dimCol, cands, at)
	for i := range at {
		want := dim[at[i]]
		if got := proj.ApproxLow(i); got != want {
			t.Fatalf("ApproxLow[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestProjectionShipCharges(t *testing.T) {
	sys := device.PaperSystem()
	m := device.NewMeter(sys)
	vals := shuffledInts(10000, 27)
	col := decompose(t, vals, 8)
	cands := SelectApprox(nil, col, col.Relax(0, 5000))
	proj := ProjectApprox(m, col, cands)
	if m.GPU == 0 {
		t.Error("approximate projection charged no GPU time")
	}
	proj.Ship(m)
	if m.PCI == 0 {
		t.Error("projection ship charged no PCI time")
	}
	before := m.PCI
	proj.Ship(m)
	if m.PCI != before {
		t.Error("double ship charged twice")
	}
}
