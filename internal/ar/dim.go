package ar

import (
	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/par"
)

// Dimension-side operators: after a foreign-key join has mapped each fact
// candidate to a dimension position (FKPositionsApprox), selections and
// projections on dimension attributes address the dimension column through
// that position indirection while the candidate list itself stays
// fact-side. This is how the paper evaluates TPC-H Q14's predicate on
// part.p_type (§VI-D1): FK joins share the projective-join code path.

// SelectApproxAt narrows a candidate set with a relaxed predicate on a
// dimension column, gathering codes at the joined dimension positions `at`
// (aligned with in). It returns the filtered candidates — with the
// dimension codes attached for later refinement — and the correspondingly
// filtered position list.
func SelectApproxAt(m *device.Meter, col *bwd.Column, r bwd.ApproxRange, in *Candidates, at []bat.OID) (*Candidates, []bat.OID) {
	keep := mem.Ints.Get(len(in.IDs))
	codes := mem.U64.Get(len(in.IDs))
	outAt := oidPool.Get(len(in.IDs))
	if !r.Empty {
		for i := range in.IDs {
			code := col.Approx.Get(int(at[i]))
			if r.Contains(code) {
				keep = append(keep, i)
				codes = append(codes, code)
				outAt = append(outAt, at[i])
			}
		}
	}
	out := in.filterTo(keep)
	out.shipped = false
	out.attach = append(out.attach, attachment{col: col, codes: codes, rng: r, filtered: true})
	if m != nil {
		n := len(in.IDs)
		seq := int64(n)*8 + int64(len(keep))*8 + packedBytes(len(keep), col.Dec.ApproxBits)
		m.GPUKernel(seq, packedBytes(n, col.Dec.ApproxBits), int64(n)*OpsPackedScan)
	}
	mem.Ints.Put(keep)
	return out, outAt
}

// SelectRefineAt is the refinement of a dimension-side selection: exact
// dimension values are reconstructed from the shipped codes and the
// host-resident dimension residuals at the joined positions, the precise
// predicate is re-evaluated, and false positives are dropped from the
// candidate set and the position list alike.
func SelectRefineAt(m *device.Meter, threads int, col *bwd.Column, lo, hi int64, in *Candidates, at []bat.OID) (*Candidates, []bat.OID, []int64) {
	return SelectRefineAtPar(par.Bill(threads), m, col, lo, hi, in, at)
}

// SelectRefineAtPar is the morsel-parallel SelectRefineAt: survivors
// concatenate in morsel order, keeping candidate order and the position
// list aligned exactly as the serial loop does.
func SelectRefineAtPar(p par.P, m *device.Meter, col *bwd.Column, lo, hi int64, in *Candidates, at []bat.OID) (*Candidates, []bat.OID, []int64) {
	codes := in.CodesFor(col)
	if codes == nil {
		panic("ar: SelectRefineAt on a dimension column without attached codes")
	}
	n := len(in.IDs)
	keepBuf := mem.Ints.GetN(n)
	valsBuf := mem.I64.GetN(n)
	counts, total, err := par.ForCounted(p, n, func(_ *mem.Scratch, _, mlo, mhi int) int {
		cnt := 0
		for i := mlo; i < mhi; i++ {
			var r uint64
			if col.Dec.ResBits > 0 {
				r = col.Residual.Get(int(at[i]))
			}
			v := col.ReconstructFrom(codes[i], r)
			if v >= lo && v <= hi {
				keepBuf[mlo+cnt] = i
				valsBuf[mlo+cnt] = v
				cnt++
			}
		}
		return cnt
	})
	var keep []int
	var vals []int64
	var outAt []bat.OID
	if err != nil {
		keep, vals, outAt = keepBuf[:0], valsBuf[:0], oidPool.GetN(0)
	} else {
		chunk := p.ChunkSize()
		keep = par.Compact(counts, chunk, keepBuf)
		vals = par.Compact(counts, chunk, valsBuf)
		mem.Ints.Put(counts)
		outAt = oidPool.GetN(total)
		for i, k := range keep {
			outAt[i] = at[k]
		}
	}
	out := in.filterTo(keep)
	mem.Ints.Put(keepBuf)
	if m != nil && col.Dec.ResBits > 0 {
		// Fully resident dimension columns need no refinement (§IV-C).
		resFetch := device.RandomFetchBytes(int64(n), residualBytes(col.Dec.ResBits), col.Residual.Bytes())
		seq := int64(n)*8 + packedBytes(n, col.Dec.ApproxBits) + resFetch + int64(len(keep))*12
		m.CPUWork(p.NThreads(), seq, 0, int64(n)*2)
	}
	return out, outAt, vals
}

// ProjectRefineAt refines a dimension projection: like ProjectRefine, but
// the residual lookups address the dimension column through the refined
// position list `atRefined` (aligned with refined) instead of the
// candidate IDs.
func ProjectRefineAt(m *device.Meter, threads int, p *Projection, refined *Candidates, atRefined []bat.OID) ([]int64, error) {
	return ProjectRefineAtPar(par.Bill(threads), m, p, refined, atRefined)
}

// ProjectRefineAtPar is the morsel-parallel ProjectRefineAt.
func ProjectRefineAtPar(pp par.P, m *device.Meter, p *Projection, refined *Candidates, atRefined []bat.OID) ([]int64, error) {
	pos, err := TranslucentJoinMetered(m, pp.NThreads(), p.Src.IDs, refined.IDs)
	if err != nil {
		return nil, err
	}
	out := mem.I64.GetN(len(refined.IDs))
	col := p.Col
	pp.For(len(pos), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var r uint64
			if col.Dec.ResBits > 0 {
				r = col.Residual.Get(int(atRefined[i]))
			}
			out[i] = col.ReconstructFrom(p.Codes[pos[i]], r)
		}
	})
	mem.Ints.Put(pos)
	if m != nil && col.Dec.ResBits > 0 {
		n := len(refined.IDs)
		resFetch := device.RandomFetchBytes(int64(n), residualBytes(col.Dec.ResBits), col.Residual.Bytes())
		seq := packedBytes(n, col.Dec.ApproxBits) + resFetch + int64(n)*8
		m.CPUWork(pp.NThreads(), seq, 0, int64(n))
	}
	return out, nil
}
