package ar

import (
	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/device"
)

// Aggregation in the A&R framework depends on the aggregation function
// (§IV-F): count is trivial; min and max need candidate sets that provably
// contain the true extremum; sum and avg are victims of destructive
// distributivity when combined with arithmetic, and their exact values are
// computed on the CPU unless all data is device resident.

// CountApprox returns the approximate count — the candidate-set size,
// an upper bound on the exact count — as an interval whose lower bound
// subtracts the candidates that might still be false positives.
func CountApprox(m *device.Meter, cands *Candidates) Interval {
	certain := 0
	for i := range cands.IDs {
		if cands.Certain(i) {
			certain++
		}
	}
	if m != nil {
		m.GPUKernel(int64(len(cands.IDs))*4, 0, int64(len(cands.IDs)))
	}
	return Interval{int64(certain), int64(len(cands.IDs))}
}

// SumApprox returns strict bounds on the sum of the projected column over
// the candidates: every candidate contributes its approximation interval;
// possibly-false-positive candidates contribute [0, hi] because refinement
// may drop them entirely.
func SumApprox(m *device.Meter, p *Projection) Interval {
	var lo, hi int64
	err := p.Col.Dec.Err()
	for i := range p.Codes {
		vLo := p.ApproxLow(i)
		vHi := vLo + err
		if p.Src != nil && !p.Src.Certain(i) {
			// A false positive contributes nothing after refinement.
			if vLo > 0 {
				vLo = 0
			}
			if vHi < 0 {
				vHi = 0
			}
		}
		lo += vLo
		hi += vHi
	}
	if m != nil {
		m.GPUKernel(packedBytes(len(p.Codes), p.Col.Dec.ApproxBits), 0,
			int64(len(p.Codes))*bulk.OpsAggregate)
	}
	return Interval{lo, hi}
}

// SumRefine computes the exact sum of refined values on the CPU. When the
// summed expression involves multiplication (destructive distributivity,
// §IV-G), the caller must pass the values re-derived from reconstructed
// inputs; the approximate sum cannot shortcut this.
func SumRefine(m *device.Meter, threads int, vals []int64) int64 {
	return bulk.Sum(m, threads, vals)
}

// SumGroupedApprox returns per-group sum bounds over the projected column
// under a device-side pre-grouping.
func SumGroupedApprox(m *device.Meter, p *Projection, g *Grouping) []Interval {
	out := make([]Interval, g.NGroups)
	err := p.Col.Dec.Err()
	for i := range p.Codes {
		vLo := p.ApproxLow(i)
		vHi := vLo + err
		if p.Src != nil && !p.Src.Certain(i) {
			if vLo > 0 {
				vLo = 0
			}
			if vHi < 0 {
				vHi = 0
			}
		}
		gi := g.IDs[i]
		out[gi].Lo += vLo
		out[gi].Hi += vHi
	}
	if m != nil {
		m.GPUKernel(packedBytes(len(p.Codes), p.Col.Dec.ApproxBits)+int64(len(p.Codes))*4, 0,
			int64(len(p.Codes))*2)
	}
	return out
}

// MinCandidates is the approximate side of a min/max aggregation: a subset
// of the candidate IDs guaranteed to contain the true extremum after
// refinement.
type MinCandidates struct {
	IDs []bat.OID
	// Bound is the certain upper bound on the true minimum (or lower
	// bound on the true maximum) that pruned the set.
	Bound int64
}

// MinApprox selects the candidates that could hold the minimum of the
// projected column (§IV-F, Fig 6). A candidate that is certainly a true
// positive bounds the minimum from above by approxLow+err; every candidate
// whose approxLow does not exceed the tightest such bound stays — in
// particular false positives whose approximation looks minimal, which is
// exactly the trap Fig 6 illustrates. If no candidate is certain, all
// candidates stay.
func MinApprox(m *device.Meter, p *Projection) *MinCandidates {
	err := p.Col.Dec.Err()
	bound, haveBound := int64(0), false
	for i := range p.Codes {
		if p.Src != nil && !p.Src.Certain(i) {
			continue
		}
		hi := p.ApproxLow(i) + err
		if !haveBound || hi < bound {
			bound, haveBound = hi, true
		}
	}
	out := &MinCandidates{}
	for i := range p.Codes {
		if !haveBound || p.ApproxLow(i) <= bound {
			out.IDs = append(out.IDs, p.Src.IDs[i])
		}
	}
	if haveBound {
		out.Bound = bound
	}
	if m != nil {
		m.GPUKernel(packedBytes(len(p.Codes), p.Col.Dec.ApproxBits)+int64(len(out.IDs))*4, 0,
			int64(len(p.Codes))*2)
	}
	return out
}

// MaxApprox is the mirror image of MinApprox for maxima.
func MaxApprox(m *device.Meter, p *Projection) *MinCandidates {
	err := p.Col.Dec.Err()
	bound, haveBound := int64(0), false
	for i := range p.Codes {
		if p.Src != nil && !p.Src.Certain(i) {
			continue
		}
		lo := p.ApproxLow(i)
		if !haveBound || lo > bound {
			bound, haveBound = lo, true
		}
	}
	out := &MinCandidates{}
	for i := range p.Codes {
		if !haveBound || p.ApproxLow(i)+err >= bound {
			out.IDs = append(out.IDs, p.Src.IDs[i])
		}
	}
	if haveBound {
		out.Bound = bound
	}
	if m != nil {
		m.GPUKernel(packedBytes(len(p.Codes), p.Col.Dec.ApproxBits)+int64(len(out.IDs))*4, 0,
			int64(len(p.Codes))*2)
	}
	return out
}

// MinRefine computes the exact minimum over the refined values whose IDs
// survived both the min-candidate pruning and the selection refinement
// (§IV-F: "a join of the candidate set with the input residuals and the
// calculation of the minimum"). refinedIDs/refinedVals come from the
// selection refinement; mc from MinApprox. ok is false when no candidate
// survives.
func MinRefine(m *device.Meter, threads int, mc *MinCandidates, refinedIDs []bat.OID, refinedVals []int64) (int64, bool) {
	keep := intersectVals(mc.IDs, refinedIDs, refinedVals)
	if m != nil {
		m.CPUWork(threads, int64(len(mc.IDs)+len(refinedIDs))*4, 0,
			int64(len(mc.IDs)+len(refinedIDs)))
	}
	return bulk.Min(m, threads, keep)
}

// MaxRefine is the mirror image of MinRefine.
func MaxRefine(m *device.Meter, threads int, mc *MinCandidates, refinedIDs []bat.OID, refinedVals []int64) (int64, bool) {
	keep := intersectVals(mc.IDs, refinedIDs, refinedVals)
	if m != nil {
		m.CPUWork(threads, int64(len(mc.IDs)+len(refinedIDs))*4, 0,
			int64(len(mc.IDs)+len(refinedIDs)))
	}
	return bulk.Max(m, threads, keep)
}

// intersectVals returns the refined values whose IDs also appear in the
// candidate ID set.
func intersectVals(candIDs, refinedIDs []bat.OID, refinedVals []int64) []int64 {
	inCand := make(map[bat.OID]struct{}, len(candIDs))
	for _, id := range candIDs {
		inCand[id] = struct{}{}
	}
	var out []int64
	for i, id := range refinedIDs {
		if _, ok := inCand[id]; ok {
			out = append(out, refinedVals[i])
		}
	}
	return out
}
