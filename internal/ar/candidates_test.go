package ar

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
)

func TestCodesForUnknownColumn(t *testing.T) {
	vals := shuffledInts(100, 90)
	colA := decompose(t, vals, 5)
	colB := decompose(t, vals, 5)
	cands := SelectApprox(nil, colA, colA.Relax(0, 50))
	if cands.CodesFor(colB) != nil {
		t.Error("CodesFor returned codes for a column that was never attached")
	}
	if cands.CodesFor(colA) == nil {
		t.Error("CodesFor lost the selection column's codes")
	}
}

func TestCertainWithFullRange(t *testing.T) {
	vals := shuffledInts(1000, 91)
	col := decompose(t, vals, 4)
	cands := SelectApprox(nil, col, col.Relax(-10000, 10000)) // Full
	for i := range cands.IDs {
		if !cands.Certain(i) {
			t.Fatal("full-range selection cannot produce false positives")
		}
	}
}

func TestCertainResidentAlwaysTrue(t *testing.T) {
	vals := shuffledInts(1000, 92)
	col := decompose(t, vals, 32) // resident: exact codes
	cands := SelectApprox(nil, col, col.Relax(100, 200))
	for i := range cands.IDs {
		if !cands.Certain(i) {
			t.Fatal("resident column codes are exact; all candidates certain")
		}
	}
}

func TestShipSkipsResidentCodes(t *testing.T) {
	sys := device.PaperSystem()
	vals := shuffledInts(100000, 93)

	// Distributed column: ids + codes cross the bus.
	split := decompose(t, vals, 10)
	mSplit := device.NewMeter(sys)
	cSplit := SelectApprox(nil, split, split.Relax(0, 99999))
	cSplit.Ship(mSplit)

	// Resident column: only ids cross (nothing to refine, §IV-C).
	resident := decompose(t, vals, 32)
	mRes := device.NewMeter(sys)
	cRes := SelectApprox(nil, resident, resident.Relax(0, 99999))
	cRes.Ship(mRes)

	if mRes.PCI >= mSplit.PCI {
		t.Errorf("resident ship (%v) should be cheaper than distributed ship (%v)", mRes.PCI, mSplit.PCI)
	}
	if mRes.PCI == 0 {
		t.Error("ids still have to cross the bus")
	}
}

func TestFilterToPreservesAttachments(t *testing.T) {
	a := shuffledInts(5000, 94)
	b := shuffledInts(5000, 95)
	colA := decompose(t, a, 6)
	colB := decompose(t, b, 6)
	c1 := SelectApprox(nil, colA, colA.Relax(0, 2500))
	c2 := SelectApproxOver(nil, colB, colB.Relax(0, 4000), c1)

	codesA := c2.CodesFor(colA)
	codesB := c2.CodesFor(colB)
	if codesA == nil || codesB == nil {
		t.Fatal("attachments lost through filtering")
	}
	for i, id := range c2.IDs {
		if codesA[i] != colA.Approx.Get(int(id)) {
			t.Fatalf("column A codes misaligned at %d", i)
		}
		if codesB[i] != colB.Approx.Get(int(id)) {
			t.Fatalf("column B codes misaligned at %d", i)
		}
	}
}

func TestEmptyCandidatesFlow(t *testing.T) {
	vals := shuffledInts(1000, 96)
	col := decompose(t, vals, 8)
	cands := SelectApprox(nil, col, col.Relax(100000, 200000))
	if cands.Len() != 0 {
		t.Fatal("expected empty candidates")
	}
	cands.Ship(nil)
	proj := ProjectApprox(nil, col, cands)
	if proj.Len() != 0 {
		t.Error("projection over empty candidates not empty")
	}
	refined, vals2 := SelectRefine(nil, 1, col, 100000, 200000, cands)
	if refined.Len() != 0 || len(vals2) != 0 {
		t.Error("refinement of empty candidates not empty")
	}
	grouping := GroupApprox(nil, col, cands)
	if grouping.NGroups != 0 {
		t.Error("grouping of empty candidates has groups")
	}
	iv := CountApprox(nil, cands)
	if iv.Lo != 0 || iv.Hi != 0 {
		t.Errorf("count of empty candidates = %v", iv)
	}
}

func TestShippedFlagPropagation(t *testing.T) {
	vals := shuffledInts(1000, 97)
	col := decompose(t, vals, 8)
	cands := SelectApprox(nil, col, col.Relax(0, 500))
	if cands.Shipped() {
		t.Error("fresh candidates marked shipped")
	}
	cands.Ship(nil)
	if !cands.Shipped() {
		t.Error("Ship did not mark candidates")
	}
	refined, _ := SelectRefine(nil, 1, col, 0, 500, cands)
	if !refined.Shipped() {
		t.Error("refinement output lives on the host; must stay marked shipped")
	}
	_ = bat.OID(0)
}
