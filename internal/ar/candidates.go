// Package ar implements the Approximate & Refine (A&R) operator library —
// the paper's primary contribution (§III–IV).
//
// Instead of classic relational operators over a unified data
// representation, each operator is split into two:
//
//   - an approximation operator that runs on the fast device (the simulated
//     GPU) over the bit-packed approximations and produces a candidate
//     result: a superset of the true result for structural operators, or a
//     value interval for arithmetic;
//   - a refinement operator that runs on the CPU, combining the shipped
//     candidates with the CPU-resident residuals to produce the exact
//     result (false positives eliminated, values reconstructed by bitwise
//     concatenation).
//
// Approximation operators never depend on refinement results, so an entire
// approximation subplan can execute on the device first — yielding a fast
// approximate query answer at no extra cost (§III item 4) — before the
// refinement subplan starts on the CPU.
package ar

import (
	"sync"

	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/mem"
)

// oidPool recycles candidate ID lists through the shared bat.OIDPool
// arena; codes ride the shared mem.U64 pool.
var oidPool = &bat.OIDPool

// candPool recycles Candidates headers (struct + attach backing array) so
// a refine step's output costs no allocation at all in steady state.
var candPool = sync.Pool{New: func() any { return new(Candidates) }}

// getCandidates takes a recycled (or fresh) empty candidate set marked as
// arena-backed.
func getCandidates() *Candidates {
	c := candPool.Get().(*Candidates)
	c.pooled = true
	return c
}

// attachment carries the approximation codes of one column, positionally
// aligned with a candidate list, together with the relaxed predicate range
// that was applied on that column (zero ApproxRange when the column was
// only projected, not filtered). Attachments sharing a non-zero group id
// belong to one disjunction (OR) predicate: a candidate satisfies the
// group when any member's predicate holds.
type attachment struct {
	col      *bwd.Column
	codes    []uint64
	rng      bwd.ApproxRange
	filtered bool
	group    int
}

// Candidates is the output of approximation operators on the structural
// path: a list of tuple IDs that is a superset of the exact result, in
// device (permuted) order, plus the approximation codes of every column
// that has been touched so far. The codes travel with the IDs because the
// approximations are device-resident only: once candidates are shipped to
// the host, the codes are the CPU's only view of the major bits.
type Candidates struct {
	IDs     []bat.OID
	attach  []attachment
	shipped bool
	// pooled marks IDs and every attachment's codes as arena-backed:
	// Release returns them to the pools. Sets built from caller-owned
	// slices stay unpooled and Release is a no-op on them.
	pooled bool
}

// Release returns an arena-backed candidate set's buffers (IDs and every
// attached code column) to the arena and empties the set. It must only be
// called once nothing references the set — the pipeline calls it when a
// stage hands off and the predecessor intermediate is provably dead.
// Releasing an unpooled set is a no-op.
func (c *Candidates) Release() {
	if c == nil || !c.pooled {
		return
	}
	c.pooled = false
	oidPool.Put(c.IDs)
	c.IDs = nil
	for i := range c.attach {
		mem.U64.Put(c.attach[i].codes)
		c.attach[i] = attachment{}
	}
	c.attach = c.attach[:0]
	c.shipped = false
	candPool.Put(c)
}

// Len returns the number of candidate tuples.
func (c *Candidates) Len() int { return len(c.IDs) }

// Shipped reports whether the candidate set has been transferred to the
// host.
func (c *Candidates) Shipped() bool { return c.shipped }

// CodesFor returns the approximation codes of col aligned with the
// candidate IDs, or nil if col was never attached.
func (c *Candidates) CodesFor(col *bwd.Column) []uint64 {
	for i := range c.attach {
		if c.attach[i].col == col {
			return c.attach[i].codes
		}
	}
	return nil
}

// Certain reports whether candidate i is guaranteed to satisfy every
// relaxed predicate exactly (i.e. it cannot be a false positive): its code
// on every filtered column lies strictly inside the relaxed range, away
// from the boundary buckets. For a disjunction group, some member must be
// certainly satisfied. Approximate min/max aggregation uses this to bound
// the true extremum (§IV-F, Fig 6).
func (c *Candidates) Certain(i int) bool {
	for k := range c.attach {
		a := &c.attach[k]
		if !a.filtered {
			continue
		}
		if a.group != 0 {
			// Disjunction groups: each group needs one certainly-satisfied
			// member. Evaluate a group once, at its first attachment —
			// attachment lists are a handful of filters long, so the inner
			// scans stay cheaper than any per-call scratch allocation
			// (Certain runs per candidate in approxAnswer's hot loop).
			first := true
			for j := 0; j < k; j++ {
				if c.attach[j].filtered && c.attach[j].group == a.group {
					first = false
					break
				}
			}
			if !first {
				continue
			}
			ok := false
			for j := k; j < len(c.attach); j++ {
				b := &c.attach[j]
				if b.filtered && b.group == a.group && certainIn(b, i) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
			continue
		}
		if a.col.Dec.ResBits == 0 {
			continue // exact codes: no boundary uncertainty
		}
		code := a.codes[i]
		if a.rng.Full {
			continue
		}
		if code == a.rng.Lo || code == a.rng.Hi {
			return false
		}
	}
	return true
}

// certainIn reports whether candidate i certainly satisfies one
// disjunct's exact predicate: its code lies inside the relaxed range and
// away from the boundary buckets (always, for exact codes).
func certainIn(a *attachment, i int) bool {
	if a.rng.Empty {
		return false
	}
	if a.rng.Full {
		return true
	}
	code := a.codes[i]
	if code < a.rng.Lo || code > a.rng.Hi {
		return false
	}
	if a.col.Dec.ResBits == 0 {
		return true
	}
	return code != a.rng.Lo && code != a.rng.Hi
}

// Ship charges the PCI-E transfer that moves the candidate set (IDs plus
// every attached code column) from device to host. Calling it twice is a
// no-op: data already on the host is not re-shipped.
func (c *Candidates) Ship(m *device.Meter) {
	if c.shipped {
		return
	}
	c.shipped = true
	if m == nil {
		return
	}
	n := len(c.IDs)
	bytes := int64(n) * 4
	for i := range c.attach {
		// Codes of fully device-resident columns are not shipped for
		// refinement: with no residual bits there is nothing to refine
		// (§IV-C); consumers that need the values ship them as explicit
		// projections.
		if c.attach[i].col.Dec.ResBits == 0 {
			continue
		}
		bytes += packedBytes(n, c.attach[i].col.Dec.ApproxBits)
	}
	m.Transfer(bytes)
}

// filterTo builds a new candidate set containing the positions listed in
// keep (indices into c), compacting every attachment to preserve
// alignment. Order of keep indices is preserved, so the result has the
// same permutation as c (§IV-A item 2). The new set's buffers come from
// the arena; the input is left untouched (callers release it when dead).
func (c *Candidates) filterTo(keep []int) *Candidates {
	out := getCandidates()
	out.IDs = oidPool.GetN(len(keep))
	out.shipped = c.shipped
	for i, k := range keep {
		out.IDs[i] = c.IDs[k]
	}
	for ai := range c.attach {
		src := &c.attach[ai]
		codes := mem.U64.GetN(len(keep))
		for i, k := range keep {
			codes[i] = src.codes[k]
		}
		out.attach = append(out.attach, attachment{col: src.col, codes: codes, rng: src.rng, filtered: src.filtered, group: src.group})
	}
	return out
}

// Filter builds a new candidate set containing only the positions listed
// in keep (indices into c, in candidate order), compacting every attached
// code column to preserve alignment. The query layer uses it to discharge
// rows masked by a deletion bitmap on the device: the bitmap is mirrored
// device-side (shipped when rows are deleted), so masking is one GPU
// pass over the candidate IDs — charged by the caller, which knows the
// bitmap footprint.
func (c *Candidates) Filter(keep []int) *Candidates {
	return c.filterTo(keep)
}

// packedBytes is the physical byte footprint of n bit-packed values of the
// given width, as charged for transfers and scans.
func packedBytes(n int, bits uint) int64 {
	return (int64(n)*int64(bits) + 7) / 8
}

// residualBytes is the per-value byte cost of a random residual access:
// sub-byte residuals still cost a full byte to touch.
func residualBytes(bits uint) int64 {
	if bits == 0 {
		return 0
	}
	return int64(bits+7) / 8
}
