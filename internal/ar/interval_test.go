package ar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{10, 20}
	if iv.IsExact() {
		t.Error("non-degenerate interval claims exact")
	}
	if !Exact(5).IsExact() {
		t.Error("Exact(5) not exact")
	}
	if iv.Width() != 10 {
		t.Errorf("Width = %d, want 10", iv.Width())
	}
	if !iv.Contains(10) || !iv.Contains(20) || iv.Contains(21) || iv.Contains(9) {
		t.Error("Contains boundary behaviour wrong")
	}
	if iv.Mid() != 15 {
		t.Errorf("Mid = %d, want 15", iv.Mid())
	}
	if iv.String() == "" {
		t.Error("empty String")
	}
}

// TestIntervalArithmeticContainment is invariant 8 of DESIGN.md: for any
// values a ∈ A, b ∈ B, the result of the exact operation lies inside the
// interval of the interval operation.
func TestIntervalArithmeticContainment(t *testing.T) {
	f := func(aLo8, aW8, bLo8, bW8, aOff8, bOff8 uint8) bool {
		aLo, aW := int64(aLo8)-128, int64(aW8)
		bLo, bW := int64(bLo8)-128, int64(bW8)
		A := Interval{aLo, aLo + aW}
		B := Interval{bLo, bLo + bW}
		a := aLo + int64(aOff8)%(aW+1)
		b := bLo + int64(bOff8)%(bW+1)

		if !A.Add(B).Contains(a + b) {
			return false
		}
		if !A.Sub(B).Contains(a - b) {
			return false
		}
		if !A.MulScaled(B, 1).Contains(a * b) {
			return false
		}
		if b != 0 && (B.Lo > 0 || B.Hi < 0) {
			if !A.Div(B).Contains(a / b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntervalMulScaledFixedPoint(t *testing.T) {
	// 1.00 * [0.05, 0.07] at scale 100.
	got := Exact(100).MulScaled(Interval{5, 7}, 100)
	if got.Lo != 5 || got.Hi != 7 {
		t.Errorf("MulScaled = %v, want [5,7]", got)
	}
}

func TestIntervalDivByZeroSpan(t *testing.T) {
	got := Interval{10, 20}.Div(Interval{-1, 1})
	if got.Lo != math.MinInt64 || got.Hi != math.MaxInt64 {
		t.Errorf("Div across zero = %v, want full range", got)
	}
}

func TestIntervalSqrt(t *testing.T) {
	got := Interval{16, 100}.Sqrt()
	if got.Lo != 4 || got.Hi != 10 {
		t.Errorf("Sqrt = %v, want [4,10]", got)
	}
	neg := Interval{-10, -4}.Sqrt()
	if neg.Lo != 0 || neg.Hi != 0 {
		t.Errorf("Sqrt of negative interval = %v, want [0,0]", neg)
	}
	rng := rand.New(rand.NewSource(50))
	for i := 0; i < 1000; i++ {
		v := int64(rng.Intn(1 << 30))
		r := isqrt(v)
		if r*r > v || (r+1)*(r+1) <= v {
			t.Fatalf("isqrt(%d) = %d", v, r)
		}
	}
}

func TestIntervalPow(t *testing.T) {
	if got := (Interval{2, 3}).Pow(0); got != Exact(1) {
		t.Errorf("Pow(0) = %v, want [1,1]", got)
	}
	if got := (Interval{2, 3}).Pow(2); got.Lo != 4 || got.Hi != 9 {
		t.Errorf("Pow(2) = %v, want [4,9]", got)
	}
	got := (Interval{-2, 3}).Pow(2)
	for _, v := range []int64{-2, -1, 0, 1, 2, 3} {
		if !got.Contains(v * v) {
			t.Errorf("Pow(2) of [-2,3] = %v does not contain %d", got, v*v)
		}
	}
}

func TestIsDestructive(t *testing.T) {
	// §IV-G: sums of products cannot reuse approximations; additive
	// operations can.
	for _, op := range []string{"add", "sub"} {
		if IsDestructive(op) {
			t.Errorf("%s flagged destructive", op)
		}
	}
	for _, op := range []string{"mul", "div", "sqrt", "pow", "someUDF"} {
		if !IsDestructive(op) {
			t.Errorf("%s not flagged destructive", op)
		}
	}
}

// TestDestructiveDistributivityDemonstration verifies the paper's §IV-G
// algebra: the exact product of two decomposed values cannot be derived
// from the products of approximations and residuals alone — the cross
// terms need both factors on one device.
func TestDestructiveDistributivityDemonstration(t *testing.T) {
	a, b := int64(747979), int64(123456)
	split := func(v int64, resBits uint) (ap, re int64) {
		re = v & int64((uint64(1)<<resBits)-1)
		return v - re, re
	}
	aAp, aRe := split(a, 8)
	bAp, bRe := split(b, 8)
	full := a * b
	fromParts := aAp*bAp + aRe*bRe // what each device could compute locally
	crossTerms := aAp*bRe + bAp*aRe
	if fromParts+crossTerms != full {
		t.Fatal("algebra broken")
	}
	if fromParts == full {
		t.Fatal("example does not demonstrate destructive distributivity")
	}
}
