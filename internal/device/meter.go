package device

import (
	"fmt"
	"time"
)

// Meter accumulates the simulated busy time of each resource over a query
// execution. The three buckets correspond to the stacked-bar breakdowns of
// Figs 9 and 10 in the paper ("Involved Devices: GPU / CPU / PCI").
//
// A Meter charges sequentially: the paper's A&R plans run the approximation
// subplan to completion before the first refinement operator (§V-B, Fig 7),
// so total query time is the sum of the buckets.
type Meter struct {
	sys *System

	GPU time.Duration
	CPU time.Duration
	PCI time.Duration
}

// NewMeter returns a Meter charging against the given system.
func NewMeter(sys *System) *Meter { return &Meter{sys: sys} }

// System returns the system the meter charges against.
func (m *Meter) System() *System { return m.sys }

// Total returns the summed simulated time across all resources.
func (m *Meter) Total() time.Duration { return m.GPU + m.CPU + m.PCI }

// Add merges another meter's charges into m.
func (m *Meter) Add(o *Meter) {
	m.GPU += o.GPU
	m.CPU += o.CPU
	m.PCI += o.PCI
}

// Scale multiplies all charges by f. The experiment harness uses this to
// extrapolate a run at reduced data scale to the paper's data scale — every
// charge below is linear in the input size, so the extrapolation is exact
// (see DESIGN.md §1).
func (m *Meter) Scale(f float64) {
	m.GPU = time.Duration(float64(m.GPU) * f)
	m.CPU = time.Duration(float64(m.CPU) * f)
	m.PCI = time.Duration(float64(m.PCI) * f)
}

// kernelTime is the generic device charge: fixed launch latency plus the
// larger of the bandwidth term and the compute term (a kernel is either
// memory-bound or compute-bound).
func kernelTime(d *Device, seqBytes, randBytes, ops int64, threads int) time.Duration {
	bw := d.EffectiveBW(threads)
	mem := (float64(seqBytes) + float64(randBytes)*d.RandomPenalty) / bw
	t := threads
	if t < 1 {
		t = 1
	}
	if d.Kind == GPUKind {
		t = 1 // GPU OpRate is already device-wide
	}
	comp := float64(ops) / (d.OpRate * float64(t))
	body := mem
	if comp > body {
		body = comp
	}
	return d.Launch + seconds(body)
}

// GPUKernel charges one GPU kernel that scans seqBytes sequentially,
// touches randBytes with gather/scatter access, and executes ops simple
// tuple-operations.
func (m *Meter) GPUKernel(seqBytes, randBytes, ops int64) {
	m.GPU += kernelTime(m.sys.GPU, seqBytes, randBytes, ops, 1)
}

// CPUWork charges one CPU operator using the given number of threads.
func (m *Meter) CPUWork(threads int, seqBytes, randBytes, ops int64) {
	m.CPU += kernelTime(m.sys.CPU, seqBytes, randBytes, ops, threads)
}

// Transfer charges a PCI-E transfer of n bytes (either direction).
func (m *Meter) Transfer(n int64) {
	if n <= 0 {
		return
	}
	m.PCI += m.sys.Bus.TransferTime(n)
}

// StreamHypothetical returns the paper's "Stream Input (Hypothetical)"
// baseline: the minimal time any streaming GPU system would need just to
// push the query's input through the PCI-E bus (§VI-A).
func (m *Meter) StreamHypothetical(inputBytes int64) time.Duration {
	return m.sys.Bus.TransferTime(inputBytes)
}

// String formats the meter like the paper's stacked bars.
func (m *Meter) String() string {
	return fmt.Sprintf("total %v (GPU %v, CPU %v, PCI %v)", m.Total(), m.GPU, m.CPU, m.PCI)
}
