// Package device simulates the heterogeneous memory/compute devices of the
// paper's testbed: a discrete GPU with small, fast memory; a large, slower
// CPU memory; and the PCI-E bus between them.
//
// This package is the substitution for real CUDA/OpenCL hardware (see
// DESIGN.md §1). Operators execute for real in Go — producing exact,
// testable results — while the simulator charges analytical time for every
// byte scanned, gathered, or shipped and every tuple-op executed. The
// paper's findings are bandwidth-shape arguments (GPU internal bandwidth ≫
// CPU bandwidth ≫ PCI-E bandwidth), so a calibrated bandwidth/latency model
// reproduces its crossovers and speed-up factors deterministically.
//
// Two classes of constants appear below: hardware data-sheet numbers
// (GeForce GTX 680, dual Xeon E5-2650, measured 3.95 GB/s DMA transfers —
// all quoted from the paper) and effective-rate calibrations that account
// for the paper's explicitly untuned, JIT-generated kernels ("we did not
// perform any hardware-specific tuning", §V-C). Effective rates are what
// the cost model uses; data-sheet numbers are documented for reference.
package device

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Kind distinguishes device types.
type Kind int

// Device kinds.
const (
	GPUKind Kind = iota
	CPUKind
)

func (k Kind) String() string {
	switch k {
	case GPUKind:
		return "GPU"
	case CPUKind:
		return "CPU"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrOutOfMemory is returned when an allocation exceeds device capacity.
// The paper's central premise is that hot data generally does NOT fit the
// GPU (§I); the allocator makes that constraint explicit instead of
// silently spilling.
var ErrOutOfMemory = errors.New("device: out of memory")

// Device models one processing device with its attached memory.
type Device struct {
	Name     string
	Kind     Kind
	Capacity int64 // bytes of attached memory

	// ScanBW is the effective sequential scan bandwidth in bytes/second
	// for a single kernel/operator stream.
	ScanBW float64
	// RandomPenalty multiplies the cost of random (gather/scatter)
	// access relative to sequential scans.
	RandomPenalty float64
	// OpRate is the effective simple tuple-operation rate per second for
	// one stream (one thread on the CPU; the whole device on the GPU).
	OpRate float64
	// Launch is the fixed dispatch latency per kernel/operator.
	Launch time.Duration

	// PerThreadBW and AggregateBW describe the memory-wall saturation law
	// for multi-threaded devices: t threads see an effective bandwidth of
	// min(t·PerThreadBW, AggregateBW) (§VI-E, Fig 11). For the GPU both
	// equal ScanBW.
	PerThreadBW float64
	AggregateBW float64
	// Threads is the number of hardware threads (CPU) or lanes (GPU).
	Threads int

	mu   sync.Mutex
	used int64
}

// Alloc reserves n bytes of device memory, failing with ErrOutOfMemory if
// the device cannot hold them. Free the returned allocation when done.
func (d *Device) Alloc(n int64) (*Alloc, error) {
	if n < 0 {
		return nil, fmt.Errorf("device %s: negative allocation %d", d.Name, n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used+n > d.Capacity {
		return nil, fmt.Errorf("%w: %s holds %d of %d bytes, cannot add %d",
			ErrOutOfMemory, d.Name, d.used, d.Capacity, n)
	}
	d.used += n
	return &Alloc{dev: d, bytes: n}, nil
}

// Used returns the currently allocated bytes.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Available returns the unallocated capacity in bytes.
func (d *Device) Available() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Capacity - d.used
}

// EffectiveBW returns the effective bandwidth seen by t concurrent streams
// in total: min(t·PerThreadBW, AggregateBW).
func (d *Device) EffectiveBW(t int) float64 {
	if t < 1 {
		t = 1
	}
	bw := float64(t) * d.PerThreadBW
	if bw > d.AggregateBW {
		bw = d.AggregateBW
	}
	return bw
}

// Alloc is a reservation of device memory.
type Alloc struct {
	dev   *Device
	bytes int64
	freed bool
	mu    sync.Mutex
}

// Bytes returns the allocation size.
func (a *Alloc) Bytes() int64 { return a.bytes }

// Device returns the owning device.
func (a *Alloc) Device() *Device { return a.dev }

// Free releases the allocation. Freeing twice is a no-op.
func (a *Alloc) Free() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.freed {
		return
	}
	a.freed = true
	a.dev.mu.Lock()
	a.dev.used -= a.bytes
	a.dev.mu.Unlock()
}

// Bus models the PCI-E interconnect between CPU and GPU memory.
type Bus struct {
	// BW is the achievable DMA bandwidth in bytes/second. The paper
	// measured 3.95 GB/s with AMD's TransferOverlap tool (§VI-A).
	BW float64
	// Latency is the fixed per-transfer setup cost.
	Latency time.Duration
}

// TransferTime returns the simulated time to move n bytes across the bus.
func (b *Bus) TransferTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return b.Latency + seconds(float64(n)/b.BW)
}

// System bundles the simulated devices of one machine.
type System struct {
	GPU *Device
	CPU *Device
	Bus *Bus
}

// Data-sheet constants from the paper's testbed (§VI-A), documented for
// reference; the cost model uses the effective rates in PaperSystem.
const (
	// GTX680MemoryBW is the GTX 680 data-sheet memory bandwidth.
	GTX680MemoryBW = 192.3e9
	// GTX680Capacity is the GTX 680 device memory (2 GB).
	GTX680Capacity = 2 << 30
	// XeonE5AggregateBW is the theoretical dual-socket DDR3-1600
	// 4-channel bandwidth (2 × 51.2 GB/s).
	XeonE5AggregateBW = 102.4e9
	// MeasuredPCIeBW is the paper's measured DMA bandwidth (§VI-A).
	MeasuredPCIeBW = 3.95e9
)

// PaperSystem returns a fresh simulated instance of the paper's testbed:
// two eight-core Xeon E5-2650 (32 hardware threads, 256 GB RAM) and one
// GeForce GTX 680 (2 GB) behind a 3.95 GB/s PCI-E bus.
//
// Effective-rate calibration (see package comment): the GPU's JIT-generated
// unoptimized kernels reach roughly 30 GB/s of its 192.3 GB/s data-sheet
// bandwidth; one MonetDB bulk-operator stream streams at roughly 2 GB/s and
// the workload-effective memory wall sits near 16 GB/s (Fig 11 saturates at
// ~7× single-thread throughput).
func PaperSystem() *System {
	return &System{
		GPU: &Device{
			Name:          "GeForce GTX 680 (simulated)",
			Kind:          GPUKind,
			Capacity:      GTX680Capacity,
			ScanBW:        30e9,
			RandomPenalty: 3,
			OpRate:        20e9,
			Launch:        30 * time.Microsecond,
			PerThreadBW:   30e9,
			AggregateBW:   30e9,
			Threads:       1536,
		},
		CPU: &Device{
			Name:          "2x Xeon E5-2650 (simulated)",
			Kind:          CPUKind,
			Capacity:      256 << 30,
			ScanBW:        2.0e9,
			RandomPenalty: 4,
			OpRate:        800e6,
			Launch:        2 * time.Microsecond,
			PerThreadBW:   2.0e9,
			AggregateBW:   16e9,
			Threads:       32,
		},
		Bus: &Bus{BW: MeasuredPCIeBW, Latency: 15 * time.Microsecond},
	}
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// LineBytes is the memory transfer granularity of a random access: even a
// one-byte gather fetches a full cache line.
const LineBytes = 64

// RandomFetchBytes models the memory traffic of n random accesses of
// `unit` bytes each into an array of arrayBytes total: sparse access pays
// one cache line per touch, but never more than streaming the whole array
// once (plus the touched units) — dense "random" access degenerates into a
// scan.
func RandomFetchBytes(n, unit, arrayBytes int64) int64 {
	sparse := n * LineBytes
	dense := arrayBytes + n*unit
	if sparse < dense {
		return sparse
	}
	return dense
}

// ScaledSystem returns the paper testbed with every rate (bandwidths,
// op rates) divided by scale while fixed costs (launch latencies, transfer
// setup) stay untouched. Running a workload of size N/scale on the scaled
// system charges exactly the variable cost of the full workload on the
// real system plus the true (unscaled) fixed costs — the correct way to
// extrapolate a reduced-scale experiment (used by package experiments).
func ScaledSystem(scale float64) *System {
	if scale < 1 {
		scale = 1
	}
	s := PaperSystem()
	for _, d := range []*Device{s.GPU, s.CPU} {
		d.ScanBW /= scale
		d.OpRate /= scale
		d.PerThreadBW /= scale
		d.AggregateBW /= scale
	}
	s.Bus.BW /= scale
	return s
}
