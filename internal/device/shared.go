package device

import (
	"fmt"
	"sync"
	"time"
)

// SharedMeter aggregates Meter charges from concurrently executing queries.
// A plain Meter is owned by one execution and is not safe for concurrent
// use; server sessions and the scheduler merge finished per-query meters
// into SharedMeters to keep running GPU/CPU/PCI totals across goroutines.
type SharedMeter struct {
	mu      sync.Mutex
	gpu     time.Duration
	cpu     time.Duration
	pci     time.Duration
	queries int64
}

// Merge folds one finished query meter into the running totals. A nil meter
// (e.g. a bwdecompose statement) counts as a query with no charges.
func (s *SharedMeter) Merge(m *Meter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	if m == nil {
		return
	}
	s.gpu += m.GPU
	s.cpu += m.CPU
	s.pci += m.PCI
}

// Totals returns the accumulated per-resource busy times and the number of
// merged queries.
func (s *SharedMeter) Totals() (gpu, cpu, pci time.Duration, queries int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gpu, s.cpu, s.pci, s.queries
}

// Total returns the summed simulated time across all resources.
func (s *SharedMeter) Total() time.Duration {
	gpu, cpu, pci, _ := s.Totals()
	return gpu + cpu + pci
}

// String formats the totals like Meter.String, plus the query count.
func (s *SharedMeter) String() string {
	gpu, cpu, pci, q := s.Totals()
	return fmt.Sprintf("%d queries, total %v (GPU %v, CPU %v, PCI %v)",
		q, gpu+cpu+pci, gpu, cpu, pci)
}
