package device

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAllocAccounting(t *testing.T) {
	d := &Device{Name: "test", Capacity: 100}
	a, err := d.Alloc(60)
	if err != nil {
		t.Fatalf("Alloc(60): %v", err)
	}
	if d.Used() != 60 || d.Available() != 40 {
		t.Errorf("Used/Available = %d/%d, want 60/40", d.Used(), d.Available())
	}
	b, err := d.Alloc(40)
	if err != nil {
		t.Fatalf("Alloc(40): %v", err)
	}
	a.Free()
	b.Free()
	if d.Used() != 0 {
		t.Errorf("Used after frees = %d, want 0", d.Used())
	}
}

func TestAllocOOM(t *testing.T) {
	d := &Device{Name: "small", Capacity: 100}
	if _, err := d.Alloc(101); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("Alloc(101) err = %v, want ErrOutOfMemory", err)
	}
	a, _ := d.Alloc(80)
	if _, err := d.Alloc(30); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("Alloc beyond remaining capacity err = %v, want ErrOutOfMemory", err)
	}
	a.Free()
	if _, err := d.Alloc(100); err != nil {
		t.Errorf("Alloc after free: %v", err)
	}
}

func TestAllocNegative(t *testing.T) {
	d := &Device{Name: "d", Capacity: 10}
	if _, err := d.Alloc(-1); err == nil {
		t.Error("negative alloc succeeded")
	}
}

func TestDoubleFreeIsNoop(t *testing.T) {
	d := &Device{Name: "d", Capacity: 10}
	a, _ := d.Alloc(5)
	a.Free()
	a.Free()
	if d.Used() != 0 {
		t.Errorf("Used after double free = %d, want 0", d.Used())
	}
	var nilAlloc *Alloc
	nilAlloc.Free() // must not panic
}

func TestAllocConcurrent(t *testing.T) {
	d := &Device{Name: "d", Capacity: 1000}
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if a, err := d.Alloc(10); err == nil {
				a.Free()
			}
		}()
	}
	wg.Wait()
	if d.Used() != 0 {
		t.Errorf("Used after concurrent alloc/free = %d, want 0", d.Used())
	}
}

func TestEffectiveBWSaturation(t *testing.T) {
	d := &Device{PerThreadBW: 2e9, AggregateBW: 16e9}
	if got := d.EffectiveBW(1); got != 2e9 {
		t.Errorf("EffectiveBW(1) = %g, want 2e9", got)
	}
	if got := d.EffectiveBW(4); got != 8e9 {
		t.Errorf("EffectiveBW(4) = %g, want 8e9", got)
	}
	// Memory wall: 16 threads and 32 threads see the same aggregate.
	if d.EffectiveBW(16) != d.EffectiveBW(32) {
		t.Errorf("memory wall not flat: %g vs %g", d.EffectiveBW(16), d.EffectiveBW(32))
	}
	if got := d.EffectiveBW(0); got != 2e9 {
		t.Errorf("EffectiveBW(0) = %g, want per-thread floor", got)
	}
}

func TestBusTransferTime(t *testing.T) {
	b := &Bus{BW: 4e9, Latency: 10 * time.Microsecond}
	if got := b.TransferTime(0); got != 0 {
		t.Errorf("TransferTime(0) = %v, want 0", got)
	}
	got := b.TransferTime(4e9)
	want := time.Second + 10*time.Microsecond
	if got != want {
		t.Errorf("TransferTime(4e9) = %v, want %v", got, want)
	}
}

func TestPaperSystemShape(t *testing.T) {
	sys := PaperSystem()
	if sys.GPU.Capacity != 2<<30 {
		t.Errorf("GPU capacity = %d, want 2 GiB", sys.GPU.Capacity)
	}
	if sys.GPU.ScanBW <= sys.CPU.ScanBW {
		t.Error("GPU must out-bandwidth a CPU stream")
	}
	if sys.Bus.BW >= sys.CPU.AggregateBW {
		t.Error("PCI-E must be the bottleneck")
	}
	if sys.CPU.Threads != 32 {
		t.Errorf("CPU threads = %d, want 32", sys.CPU.Threads)
	}
}

func TestMeterCharging(t *testing.T) {
	sys := PaperSystem()
	m := NewMeter(sys)
	m.GPUKernel(30e9, 0, 0) // exactly one second of GPU scan + launch
	wantGPU := time.Second + sys.GPU.Launch
	if m.GPU != wantGPU {
		t.Errorf("GPU = %v, want %v", m.GPU, wantGPU)
	}
	m.Transfer(int64(sys.Bus.BW))
	wantPCI := time.Second + sys.Bus.Latency
	if m.PCI != wantPCI {
		t.Errorf("PCI = %v, want %v", m.PCI, wantPCI)
	}
	m.CPUWork(1, int64(sys.CPU.PerThreadBW), 0, 0)
	wantCPU := time.Second + sys.CPU.Launch
	if m.CPU != wantCPU {
		t.Errorf("CPU = %v, want %v", m.CPU, wantCPU)
	}
	if m.Total() != m.GPU+m.CPU+m.PCI {
		t.Error("Total != sum of buckets")
	}
}

func TestMeterComputeBound(t *testing.T) {
	sys := PaperSystem()
	m := NewMeter(sys)
	// A kernel with huge op count and no bytes must be compute-bound.
	ops := int64(sys.GPU.OpRate) // one second of ops
	m.GPUKernel(0, 0, ops)
	want := time.Second + sys.GPU.Launch
	if m.GPU != want {
		t.Errorf("compute-bound GPU = %v, want %v", m.GPU, want)
	}
}

func TestMeterRandomPenalty(t *testing.T) {
	sys := PaperSystem()
	seq := NewMeter(sys)
	rnd := NewMeter(sys)
	seq.CPUWork(1, 1e9, 0, 0)
	rnd.CPUWork(1, 0, 1e9, 0)
	if rnd.CPU <= seq.CPU {
		t.Errorf("random access (%v) must cost more than sequential (%v)", rnd.CPU, seq.CPU)
	}
}

func TestMeterCPUThreadScaling(t *testing.T) {
	sys := PaperSystem()
	one := NewMeter(sys)
	four := NewMeter(sys)
	one.CPUWork(1, 8e9, 0, 0)
	four.CPUWork(4, 8e9, 0, 0)
	if four.CPU >= one.CPU {
		t.Errorf("4 threads (%v) must be faster than 1 (%v)", four.CPU, one.CPU)
	}
	wall16 := NewMeter(sys)
	wall32 := NewMeter(sys)
	wall16.CPUWork(16, 64e9, 0, 0)
	wall32.CPUWork(32, 64e9, 0, 0)
	if wall32.CPU != wall16.CPU {
		t.Errorf("memory wall: 32 threads (%v) should equal 16 (%v) once saturated", wall32.CPU, wall16.CPU)
	}
}

func TestMeterAddAndScale(t *testing.T) {
	sys := PaperSystem()
	a := NewMeter(sys)
	b := NewMeter(sys)
	a.GPUKernel(30e9, 0, 0)
	b.Transfer(int64(sys.Bus.BW))
	a.Add(b)
	if a.PCI == 0 {
		t.Error("Add did not merge PCI charge")
	}
	before := a.Total()
	a.Scale(2)
	after := a.Total()
	if after < time.Duration(float64(before)*1.99) || after > time.Duration(float64(before)*2.01) {
		t.Errorf("Scale(2): %v -> %v, want ~2x", before, after)
	}
}

func TestStreamHypothetical(t *testing.T) {
	sys := PaperSystem()
	m := NewMeter(sys)
	// 400 MB of microbenchmark input: the paper's flat ~101 ms line.
	got := m.StreamHypothetical(400e6)
	lo, hi := 95*time.Millisecond, 110*time.Millisecond
	if got < lo || got > hi {
		t.Errorf("StreamHypothetical(400MB) = %v, want ~101ms", got)
	}
}

func TestKindString(t *testing.T) {
	if GPUKind.String() != "GPU" || CPUKind.String() != "CPU" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind should still format")
	}
}

func TestRandomFetchBytes(t *testing.T) {
	// Sparse: pays one cache line per touch.
	if got := RandomFetchBytes(100, 4, 1<<30); got != 100*LineBytes {
		t.Errorf("sparse fetch = %d, want %d", got, 100*LineBytes)
	}
	// Dense: degrades to a scan of the array plus the touched units.
	if got := RandomFetchBytes(1<<20, 4, 1<<10); got != 1<<10+4<<20 {
		t.Errorf("dense fetch = %d, want %d", got, 1<<10+4<<20)
	}
	if got := RandomFetchBytes(0, 4, 1<<10); got != 0 {
		t.Errorf("zero accesses = %d, want 0", got)
	}
}

func TestScaledSystem(t *testing.T) {
	base := PaperSystem()
	s := ScaledSystem(10)
	if s.GPU.ScanBW != base.GPU.ScanBW/10 {
		t.Errorf("GPU bandwidth not scaled: %g", s.GPU.ScanBW)
	}
	if s.CPU.AggregateBW != base.CPU.AggregateBW/10 {
		t.Errorf("CPU aggregate not scaled: %g", s.CPU.AggregateBW)
	}
	if s.Bus.BW != base.Bus.BW/10 {
		t.Errorf("bus not scaled: %g", s.Bus.BW)
	}
	// Fixed costs must stay fixed: that is the point of rate scaling.
	if s.GPU.Launch != base.GPU.Launch || s.Bus.Latency != base.Bus.Latency {
		t.Error("fixed costs were scaled")
	}
	if s.GPU.Capacity != base.GPU.Capacity {
		t.Error("capacity should not scale")
	}
	// A workload of size N/10 on the scaled system costs what N costs on
	// the real system (variable part).
	mScaled := NewMeter(s)
	mScaled.GPUKernel(3e9, 0, 0)
	mFull := NewMeter(base)
	mFull.GPUKernel(30e9, 0, 0)
	if mScaled.GPU != mFull.GPU {
		t.Errorf("scaled charge %v != full-scale charge %v", mScaled.GPU, mFull.GPU)
	}
	// Degenerate scales clamp to identity.
	s1 := ScaledSystem(0.5)
	if s1.GPU.ScanBW != base.GPU.ScanBW {
		t.Error("scale < 1 should clamp to 1")
	}
}
