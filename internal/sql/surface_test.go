package sql

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/plan"
)

// starCatalog builds a two-dimension star schema for the widened SQL
// surface tests (multi-join, OR, HAVING, ORDER BY/LIMIT).
func starCatalog(t *testing.T) *plan.Catalog {
	t.Helper()
	c := plan.NewCatalog(device.PaperSystem())
	rng := rand.New(rand.NewSource(9))
	n := 8000

	addDim := func(name, attr string, dimN int) {
		d := plan.NewTable(name)
		pk := make([]int64, dimN)
		av := make([]int64, dimN)
		for i := range pk {
			pk[i] = int64(i)
			av[i] = int64(rng.Intn(100))
		}
		if err := d.AddColumn("id", bat.NewDense(pk, bat.Width32)); err != nil {
			t.Fatal(err)
		}
		if err := d.AddColumn(attr, bat.NewDense(av, bat.Width32)); err != nil {
			t.Fatal(err)
		}
		if err := c.AddTable(d); err != nil {
			t.Fatal(err)
		}
		if err := c.BuildFKIndex(name, "id"); err != nil {
			t.Fatal(err)
		}
	}
	addDim("dcust", "region", 40)
	addDim("ditem", "kind", 25)

	fact := plan.NewTable("sales")
	cols := map[string]func() int64{
		"qty":   func() int64 { return int64(rng.Intn(100)) },
		"price": func() int64 { return int64(rng.Intn(5000)) },
		"day":   func() int64 { return int64(rng.Intn(365)) },
		"cust":  func() int64 { return int64(rng.Intn(40)) },
		"item":  func() int64 { return int64(rng.Intn(25)) },
	}
	for _, name := range []string{"qty", "price", "day", "cust", "item"} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = cols[name]()
		}
		if err := fact.AddColumn(name, bat.NewDense(vals, bat.Width32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddTable(fact); err != nil {
		t.Fatal(err)
	}
	return c
}

func decomposeStar(t *testing.T, c *plan.Catalog) {
	t.Helper()
	for _, stmt := range []string{
		"select bwdecompose(qty, 7), bwdecompose(price, 8), bwdecompose(day, 6), bwdecompose(cust, 32), bwdecompose(item, 32) from sales",
		"select bwdecompose(region, 5) from dcust",
		"select bwdecompose(kind, 5) from ditem",
	} {
		mustRun(t, c, stmt)
	}
}

// TestMultiJoinSQL runs a two-dimension star query through SQL and
// cross-checks it against the equivalent logical plan in classic mode.
func TestMultiJoinSQL(t *testing.T) {
	c := starCatalog(t)
	decomposeStar(t, c)
	res := mustRun(t, c, `
		select count(*) as n, sum(price) as rev
		from sales
		join dcust on sales.cust = dcust.id
		join ditem on sales.item = ditem.id
		where day < 200 and dcust.region < 50 and ditem.kind >= 20`)
	q := plan.Query{
		Table:   "sales",
		Filters: []plan.Filter{{Col: "day", Lo: plan.NoLo, Hi: 199}},
		Joins: []plan.JoinSpec{
			{FKCol: "cust", Dim: "dcust", DimPK: "id", DimFilters: []plan.Filter{{Col: "region", Lo: plan.NoLo, Hi: 49}}},
			{FKCol: "item", Dim: "ditem", DimPK: "id", DimFilters: []plan.Filter{{Col: "kind", Lo: 20, Hi: plan.NoHi}}},
		},
		Aggs: []plan.AggSpec{{Name: "n", Func: plan.Count}, {Name: "rev", Func: plan.Sum, Expr: plan.Col("price")}},
	}
	want, err := c.ExecClassic(q, plan.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.EqualResults(res.Rows, want.Rows) {
		t.Fatalf("SQL star join %v != engine %v", res.Rows, want.Rows)
	}
	if res.Rows[0].Vals[0] == 0 {
		t.Fatal("star join matched nothing; bad test data")
	}
	// Aggregating over both dimensions' attributes in one expression.
	res2 := mustRun(t, c, `
		select sum(dcust.region + ditem.kind) as s
		from sales join dcust on sales.cust = dcust.id join ditem on sales.item = ditem.id
		where day < 100`)
	if res2.Rows[0].Vals[0] == 0 {
		t.Fatal("cross-dimension aggregate is zero; bad test data")
	}
}

// TestOrSQL checks the disjunction surface: parenthesized OR groups mixed
// with AND, a whole-clause bare OR, and the inclusion-exclusion identity.
func TestOrSQL(t *testing.T) {
	c := starCatalog(t)
	decomposeStar(t, c)
	count := func(src string) int64 {
		res := mustRun(t, c, src)
		return res.Rows[0].Vals[0]
	}
	a := count("select count(*) as n from sales where qty < 20")
	b := count("select count(*) as n from sales where price >= 4000")
	both := count("select count(*) as n from sales where qty < 20 and price >= 4000")
	union := count("select count(*) as n from sales where qty < 20 or price >= 4000")
	if union != a+b-both {
		t.Fatalf("OR union %d != %d + %d - %d", union, a, b, both)
	}
	mixed := count("select count(*) as n from sales where (qty < 20 or price >= 4000) and day < 100")
	if mixed <= 0 || mixed > union {
		t.Fatalf("parenthesized OR with AND conjunct: implausible count %d (union %d)", mixed, union)
	}
}

// TestHavingOrderLimitSQL checks HAVING (aliased and hidden aggregates),
// ORDER BY over aliases/keys/aggregate calls, and LIMIT.
func TestHavingOrderLimitSQL(t *testing.T) {
	c := starCatalog(t)
	decomposeStar(t, c)
	full := mustRun(t, c, `
		select day, count(*) as n, sum(price) as rev from sales
		where qty < 90 group by day having count(*) > 10
		order by rev desc, day asc`)
	if len(full.Rows) == 0 {
		t.Fatal("HAVING filtered everything; bad test data")
	}
	for _, r := range full.Rows {
		if r.Vals[0] <= 10 {
			t.Fatalf("HAVING count(*) > 10 leaked group %v", r)
		}
		if len(r.Vals) != 2 {
			t.Fatalf("row has %d values, want 2 (day key + n + rev)", len(r.Vals))
		}
	}
	for i := 1; i < len(full.Rows); i++ {
		a, b := full.Rows[i-1], full.Rows[i]
		if b.Vals[1] > a.Vals[1] || (b.Vals[1] == a.Vals[1] && b.Keys[0] < a.Keys[0]) {
			t.Fatalf("rows out of order at %d: %v then %v", i, a, b)
		}
	}
	top := mustRun(t, c, `
		select day, count(*) as n, sum(price) as rev from sales
		where qty < 90 group by day having count(*) > 10
		order by rev desc, day asc limit 5`)
	if len(top.Rows) != 5 {
		t.Fatalf("LIMIT 5 returned %d rows", len(top.Rows))
	}
	if !plan.EqualResults(top.Rows, full.Rows[:5]) {
		t.Fatalf("top-k %v != prefix of full order %v", top.Rows, full.Rows[:5])
	}

	// HAVING on an aggregate that is not selected: computed hidden.
	hidden := mustRun(t, c, `
		select day, count(*) as n from sales group by day
		having sum(price) > 100000 order by n desc limit 3`)
	for _, r := range hidden.Rows {
		if len(r.Vals) != 1 {
			t.Fatalf("hidden aggregate surfaced: %v", r)
		}
	}

	// ORDER BY a group key alone; LIMIT without ORDER BY.
	if res := mustRun(t, c, "select day, count(*) as n from sales group by day order by day desc limit 2"); len(res.Rows) != 2 ||
		res.Rows[0].Keys[0] < res.Rows[1].Keys[0] {
		t.Fatalf("order by key desc limit 2 returned %v", res.Rows)
	}
	if res := mustRun(t, c, "select day, count(*) as n from sales group by day limit 4"); len(res.Rows) != 4 {
		t.Fatalf("bare LIMIT returned %d rows", len(res.Rows))
	}
}

// TestNewShapesEquivalenceSQL runs the widened surface through both
// executors via SQL and asserts identical results.
func TestNewShapesEquivalenceSQL(t *testing.T) {
	c := starCatalog(t)
	decomposeStar(t, c)
	stmts := []string{
		"select count(*) as n, sum(qty) as s from sales where qty < 30 or price > 2500",
		`select count(*) as n from sales join dcust on sales.cust = dcust.id
		 join ditem on sales.item = ditem.id where dcust.region < 60 and ditem.kind < 15`,
		`select day, sum(price) as rev from sales where (qty < 10 or qty > 80) and day < 300
		 group by day having count(*) >= 2 order by rev desc limit 7`,
	}
	for _, src := range stmts {
		b, err := Compile(c, src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		arRes, err := Exec(c, b, plan.ExecOpts{}, false)
		if err != nil {
			t.Fatalf("AR %q: %v", src, err)
		}
		clRes, err := Exec(c, b, plan.ExecOpts{}, true)
		if err != nil {
			t.Fatalf("classic %q: %v", src, err)
		}
		if !plan.EqualResults(arRes.Rows, clRes.Rows) {
			t.Fatalf("%q: A&R %v != classic %v", src, arRes.Rows, clRes.Rows)
		}
	}
}

// TestParseErrorPositions is the satellite regression: malformed ORDER
// BY / OR / JOIN statements must report the token offset and nearby text,
// not a bare message.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the message after the position prefix
	}{
		{"select count(*) from t order day", "expected BY"},
		{"select count(*) from t order by", "expected"},
		{"select count(*) from t order by sum(", "unexpected"},
		{"select count(*) from t order by n limit", "expected number"},
		{"select count(*) from t order by n limit 0", "positive integer"},
		{"select count(*) from t where a < 1 or b > 2 and c = 3", "parenthesize the OR group"},
		{"select count(*) from t where (a < 1 and b > 2) or c = 3", "conjunctive normal form"},
		{"select count(*) from t where (a < 1 or ) and c = 3", "expected"},
		{"select count(*) from t join", "expected name"},
		{"select count(*) from t join d on", "expected name"},
		{"select count(*) from t join d on a = ", "expected name"},
		{"select count(*) from t join d on a b", `expected "="`},
		{"select count(*) from t having count(*)", "expected comparison"},
		{"select count(*) from t having day > 3", "expected an aggregate call"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) did not fail", tc.src)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, "offset ") || !strings.Contains(msg, "near ") {
			t.Errorf("Parse(%q) error lacks position info: %v", tc.src, err)
		}
		if !strings.Contains(msg, tc.want) {
			t.Errorf("Parse(%q) = %v, want substring %q", tc.src, err, tc.want)
		}
	}
}

// TestNormalizeNewClauses keeps plan-cache keying stable over the new
// grammar: case and whitespace variants of the same statement must
// normalize identically.
func TestNormalizeNewClauses(t *testing.T) {
	a := Normalize("select day, sum(price) as r from sales where (qty<10 OR qty>80) group by day having count(*)>=2 order by r desc limit 7")
	b := Normalize("SELECT day , SUM(price) AS r FROM sales WHERE ( qty < 10 or qty > 80 ) GROUP BY day HAVING COUNT(*) >= 2 ORDER BY r DESC LIMIT 7")
	if a != b {
		t.Fatalf("normalization differs:\n%s\n%s", a, b)
	}
}
