package sql

import (
	"fmt"
	"strings"
)

// AST types. The grammar (keywords case-insensitive):
//
//	stmt      := [EXPLAIN] select | insert | delete | create
//	insert    := INSERT INTO name ['(' name {, name} ')']
//	             VALUES row {, row}
//	row       := '(' literal {, literal} ')'
//	delete    := DELETE FROM name [where]
//	create    := CREATE TABLE name '(' name type {, name type} ')'
//	type      := INT | DECIMAL<digits>   (decimal2 = 2 fractional digits)
//	select    := SELECT item {, item} FROM name [join] [where] [groupby]
//	item      := expr [AS name]
//	join      := JOIN name ON qualcol = qualcol
//	where     := WHERE pred {AND pred}
//	pred      := qualcol cmp literal
//	           | qualcol BETWEEN literal AND literal
//	groupby   := GROUP BY qualcol {, qualcol}
//	expr      := aggcall | arith
//	aggcall   := (SUM|COUNT|MIN|MAX|AVG) '(' (arith | '*') ')'
//	           | BWDECOMPOSE '(' qualcol ',' number ')'
//	arith     := term {(+|-) term}
//	term      := factor {'*' factor}
//	factor    := qualcol | literal | '(' arith ')'
//	qualcol   := name ['.' name]
//	literal   := number (decimal literals scale by fractional digits)

// Stmt is a parsed statement: exactly one of the branch pointers is set.
type Stmt struct {
	Explain bool
	Select  *SelectStmt
	Insert  *InsertStmt
	Delete  *DeleteStmt
	Create  *CreateStmt
}

// InsertStmt is a parsed INSERT INTO ... VALUES. Cols is nil when the
// column list is omitted (values in table schema order).
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Lit
}

// Lit is a numeric literal with the decimal scale it was written at
// (10^fractional digits; 1 for integers).
type Lit struct {
	V     int64
	Scale int64
}

// DeleteStmt is a parsed DELETE FROM ... [WHERE ...].
type DeleteStmt struct {
	Table string
	Preds []Pred
}

// CreateStmt is a parsed CREATE TABLE.
type CreateStmt struct {
	Table string
	Cols  []CreateCol
}

// CreateCol is one column definition: the type is the raw identifier
// ("int", "decimal2", ...), validated by the binder.
type CreateCol struct {
	Name string
	Type string
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Items   []SelectItem
	From    string
	Join    *JoinClause
	Preds   []Pred
	GroupBy []QualCol
}

// SelectItem is one output expression.
type SelectItem struct {
	Agg   string   // "", "sum", "count", "min", "max", "avg", "bwdecompose"
	Star  bool     // count(*)
	Expr  *ArithE  // nil for count(*) and bwdecompose
	DCol  *QualCol // bwdecompose target
	DBits int64    // bwdecompose bits
	Alias string
}

// JoinClause is a single FK join.
type JoinClause struct {
	Table    string
	LeftCol  QualCol
	RightCol QualCol
}

// Pred is a (possibly one-sided) range predicate in SQL form. LoScale and
// HiScale record the decimal scale of each literal (1 for integers) so the
// binder can align them to the column's fixed-point encoding.
type Pred struct {
	Col              QualCol
	Op               string // "=", "<", "<=", ">", ">=", "between"
	Lo, Hi           int64  // Hi used by BETWEEN
	LoScale, HiScale int64
}

// QualCol is a possibly table-qualified column name.
type QualCol struct {
	Table string // empty when unqualified
	Name  string
}

func (q QualCol) String() string {
	if q.Table == "" {
		return q.Name
	}
	return q.Table + "." + q.Name
}

// ArithE is an arithmetic expression tree.
type ArithE struct {
	Op    string  // "col", "lit", "+", "-", "*"
	Col   QualCol // when Op == "col"
	Lit   int64   // when Op == "lit"
	Scale int64   // literal scale (1, 10, 100, ...) for fixed-point mul
	L, R  *ArithE
}

type parser struct {
	toks []token
	at   int
}

// Parse parses one statement.
func Parse(src string) (*Stmt, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt := &Stmt{}
	if p.acceptKeyword("EXPLAIN") {
		stmt.Explain = true
	}
	switch {
	case !stmt.Explain && p.acceptKeyword("INSERT"):
		if stmt.Insert, err = p.parseInsert(); err != nil {
			return nil, err
		}
	case !stmt.Explain && p.acceptKeyword("DELETE"):
		if stmt.Delete, err = p.parseDelete(); err != nil {
			return nil, err
		}
	case !stmt.Explain && p.acceptKeyword("CREATE"):
		if stmt.Create, err = p.parseCreate(); err != nil {
			return nil, err
		}
	default:
		if stmt.Select, err = p.parseSelect(); err != nil {
			return nil, err
		}
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

// parseInsert parses the statement after the INSERT keyword.
func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	ins := &InsertStmt{}
	var err error
	if ins.Table, err = p.parseName(); err != nil {
		return nil, err
	}
	if p.acceptSymbol("(") {
		for {
			name, err := p.parseName()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, name)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Lit
		for {
			v, scale, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			row = append(row, Lit{V: v, Scale: scale})
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

// parseDelete parses the statement after the DELETE keyword.
func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	del := &DeleteStmt{}
	var err error
	if del.Table, err = p.parseName(); err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			del.Preds = append(del.Preds, *pred)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	return del, nil
}

// parseCreate parses the statement after the CREATE keyword.
func (p *parser) parseCreate() (*CreateStmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	cr := &CreateStmt{}
	var err error
	if cr.Table, err = p.parseName(); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseName()
		if err != nil {
			return nil, err
		}
		cr.Cols = append(cr.Cols, CreateCol{Name: name, Type: typ})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return cr, nil
}

func (p *parser) peek() token { return p.toks[p.at] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.at]
	if t.kind != tokEOF {
		p.at++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if (t.kind == tokSymbol || t.kind == tokOp) && t.text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sql: expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	for {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, *item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.parseName()
	if err != nil {
		return nil, err
	}
	sel.From = tbl
	if p.acceptKeyword("JOIN") {
		join := &JoinClause{}
		if join.Table, err = p.parseName(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		if join.LeftCol, err = p.parseQualCol(); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		if join.RightCol, err = p.parseQualCol(); err != nil {
			return nil, err
		}
		sel.Join = join
	}
	if p.acceptKeyword("WHERE") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			sel.Preds = append(sel.Preds, *pred)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseQualCol()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	return sel, nil
}

var aggNames = map[string]bool{
	"sum": true, "count": true, "min": true, "max": true, "avg": true,
}

func (p *parser) parseItem() (*SelectItem, error) {
	t := p.peek()
	item := &SelectItem{}
	if t.kind == tokIdent {
		lower := strings.ToLower(t.text)
		if strings.EqualFold(t.text, "bwdecompose") {
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			col, err := p.parseQualCol()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(","); err != nil {
				return nil, err
			}
			bits, _, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			item.Agg = "bwdecompose"
			item.DCol = &col
			item.DBits = bits
			return item, p.parseAlias(item)
		}
		if aggNames[lower] && p.toks[p.at+1].kind == tokSymbol && p.toks[p.at+1].text == "(" {
			p.advance()
			p.advance() // '('
			item.Agg = lower
			if p.acceptSymbol("*") {
				if lower != "count" {
					return nil, fmt.Errorf("sql: %s(*) is not valid", lower)
				}
				item.Star = true
			} else {
				expr, err := p.parseArith()
				if err != nil {
					return nil, err
				}
				item.Expr = expr
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return item, p.parseAlias(item)
		}
	}
	expr, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	item.Expr = expr
	return item, p.parseAlias(item)
}

func (p *parser) parseAlias(item *SelectItem) error {
	if p.acceptKeyword("AS") {
		name, err := p.parseName()
		if err != nil {
			return err
		}
		item.Alias = name
	}
	return nil
}

func (p *parser) parsePred() (*Pred, error) {
	col, err := p.parseQualCol()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, loScale, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, hiScale, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return &Pred{Col: col, Op: "between", Lo: lo, Hi: hi, LoScale: loScale, HiScale: hiScale}, nil
	}
	t := p.peek()
	if t.kind != tokOp {
		return nil, fmt.Errorf("sql: expected comparison after %s, found %q", col, t.text)
	}
	p.advance()
	v, vScale, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	switch t.text {
	case "=", "<", "<=", ">", ">=":
		return &Pred{Col: col, Op: t.text, Lo: v, LoScale: vScale}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported operator %q", t.text)
	}
}

func (p *parser) parseArith() (*ArithE, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &ArithE{Op: "+", L: left, R: right}
		case p.acceptSymbol("-"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &ArithE{Op: "-", L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTerm() (*ArithE, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("*") {
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &ArithE{Op: "*", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (*ArithE, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		v, scale, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return &ArithE{Op: "lit", Lit: v, Scale: scale}, nil
	case t.kind == tokIdent:
		col, err := p.parseQualCol()
		if err != nil {
			return nil, err
		}
		return &ArithE{Op: "col", Col: col}, nil
	case p.acceptSymbol("("):
		inner, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, fmt.Errorf("sql: unexpected %q in expression", t.text)
	}
}

func (p *parser) parseName() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected name, found %q", t.text)
	}
	p.advance()
	return strings.ToLower(t.text), nil
}

func (p *parser) parseQualCol() (QualCol, error) {
	first, err := p.parseName()
	if err != nil {
		return QualCol{}, err
	}
	if p.acceptSymbol(".") {
		second, err := p.parseName()
		if err != nil {
			return QualCol{}, err
		}
		return QualCol{Table: first, Name: second}, nil
	}
	return QualCol{Name: first}, nil
}

// parseNumber parses an integer or decimal literal, returning the scaled
// integer value and the scale (10^fractional digits).
func (p *parser) parseNumber() (value, scale int64, err error) {
	neg := p.acceptSymbol("-")
	t := p.peek()
	if t.kind != tokNumber {
		return 0, 0, fmt.Errorf("sql: expected number, found %q", t.text)
	}
	p.advance()
	text := t.text
	scale = 1
	intPart := text
	if dot := strings.IndexByte(text, '.'); dot >= 0 {
		frac := text[dot+1:]
		intPart = text[:dot] + frac
		for range frac {
			scale *= 10
		}
	}
	var v int64
	for _, c := range intPart {
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, scale, nil
}
