package sql

import (
	"fmt"
	"strings"
)

// AST types. The grammar (keywords case-insensitive):
//
//	stmt      := [EXPLAIN] select | insert | delete | create
//	insert    := INSERT INTO name ['(' name {, name} ')']
//	             VALUES row {, row}
//	row       := '(' literal {, literal} ')'
//	delete    := DELETE FROM name [WHERE pred {AND pred}]
//	create    := CREATE TABLE name '(' name type {, name type} ')'
//	type      := INT | DECIMAL<digits>   (decimal2 = 2 fractional digits)
//	select    := SELECT item {, item} FROM name {join} [where]
//	             [groupby] [having] [orderby] [limit]
//	item      := expr [AS name]
//	join      := JOIN name ON qualcol = qualcol
//	where     := WHERE orexpr
//	orexpr    := andexpr {OR andexpr}      (standard precedence: OR lowest;
//	andexpr   := boolprim {AND boolprim}    the bound form must be a
//	boolprim  := pred | '(' orexpr ')'      conjunction of predicates and
//	                                        disjunctions of predicates)
//	pred      := qualcol cmp literal
//	           | qualcol BETWEEN literal AND literal
//	groupby   := GROUP BY qualcol {, qualcol}
//	having    := HAVING havingpred {AND havingpred}
//	havingpred:= aggcall cmp literal | aggcall BETWEEN literal AND literal
//	orderby   := ORDER BY orderitem {, orderitem}
//	orderitem := (aggcall | qualcol) [ASC|DESC]
//	limit     := LIMIT number
//	expr      := aggcall | arith
//	aggcall   := (SUM|COUNT|MIN|MAX|AVG) '(' (arith | '*') ')'
//	           | BWDECOMPOSE '(' qualcol ',' number ')'
//	arith     := term {(+|-) term}
//	term      := factor {'*' factor}
//	factor    := qualcol | literal | '(' arith ')'
//	qualcol   := name ['.' name]
//	literal   := number (decimal literals scale by fractional digits)

// Stmt is a parsed statement: exactly one of the branch pointers is set.
type Stmt struct {
	Explain bool
	Select  *SelectStmt
	Insert  *InsertStmt
	Delete  *DeleteStmt
	Create  *CreateStmt
}

// InsertStmt is a parsed INSERT INTO ... VALUES. Cols is nil when the
// column list is omitted (values in table schema order).
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Lit
}

// Lit is a numeric literal with the decimal scale it was written at
// (10^fractional digits; 1 for integers).
type Lit struct {
	V     int64
	Scale int64
}

// DeleteStmt is a parsed DELETE FROM ... [WHERE ...].
type DeleteStmt struct {
	Table string
	Preds []Pred
}

// CreateStmt is a parsed CREATE TABLE. PartN > 0 when the statement carried
// a PARTITION BY clause (fact tables only; the binder lowers it into a
// shard.Spec).
type CreateStmt struct {
	Table string
	Cols  []CreateCol

	PartKind string // "hash" or "range"; empty without PARTITION BY
	PartCol  string
	PartN    int
}

// CreateCol is one column definition: the type is the raw identifier
// ("int", "decimal2", ...), validated by the binder.
type CreateCol struct {
	Name string
	Type string
}

// SelectStmt is a parsed SELECT. Limit is -1 when no LIMIT clause was
// written.
type SelectStmt struct {
	Items   []SelectItem
	From    string
	Joins   []JoinClause
	Where   []PredGroup
	GroupBy []QualCol
	Having  []HavingPred
	OrderBy []OrderItem
	Limit   int64
}

// PredGroup is one conjunct of the WHERE clause in conjunctive normal
// form: a single predicate, or (len > 1) a disjunction of predicates of
// which at least one must hold.
type PredGroup struct {
	Preds []Pred
}

// AggRef is an aggregate call referenced outside the select list (HAVING,
// ORDER BY): the function, count(*)'s star form, or the argument
// expression.
type AggRef struct {
	Func string
	Star bool
	Expr *ArithE
}

// HavingPred is one conjunct of the HAVING clause: a comparison of an
// aggregate call against a literal.
type HavingPred struct {
	Agg              AggRef
	Op               string // "=", "<", "<=", ">", ">=", "between"
	Lo, Hi           int64
	LoScale, HiScale int64
}

// OrderItem is one ORDER BY sort column: a bare column/alias reference or
// an aggregate call, with its direction.
type OrderItem struct {
	Col  *QualCol
	Agg  *AggRef
	Desc bool
}

// SelectItem is one output expression.
type SelectItem struct {
	Agg   string   // "", "sum", "count", "min", "max", "avg", "bwdecompose"
	Star  bool     // count(*)
	Expr  *ArithE  // nil for count(*) and bwdecompose
	DCol  *QualCol // bwdecompose target
	DBits int64    // bwdecompose bits
	Alias string
}

// JoinClause is a single FK join.
type JoinClause struct {
	Table    string
	LeftCol  QualCol
	RightCol QualCol
}

// Pred is a (possibly one-sided) range predicate in SQL form. LoScale and
// HiScale record the decimal scale of each literal (1 for integers) so the
// binder can align them to the column's fixed-point encoding.
type Pred struct {
	Col              QualCol
	Op               string // "=", "<", "<=", ">", ">=", "between"
	Lo, Hi           int64  // Hi used by BETWEEN
	LoScale, HiScale int64
}

// QualCol is a possibly table-qualified column name.
type QualCol struct {
	Table string // empty when unqualified
	Name  string
}

func (q QualCol) String() string {
	if q.Table == "" {
		return q.Name
	}
	return q.Table + "." + q.Name
}

// ArithE is an arithmetic expression tree.
type ArithE struct {
	Op    string  // "col", "lit", "+", "-", "*"
	Col   QualCol // when Op == "col"
	Lit   int64   // when Op == "lit"
	Scale int64   // literal scale (1, 10, 100, ...) for fixed-point mul
	L, R  *ArithE
}

type parser struct {
	src  string
	toks []token
	at   int
}

// errAt builds a parse error carrying the offending token's byte offset
// and the surrounding source text, so malformed statements point at the
// exact spot instead of reporting a bare message.
func (p *parser) errAt(t token, format string, args ...any) error {
	return fmt.Errorf("sql: offset %d near %q: %s", t.pos, near(p.src, t.pos), fmt.Sprintf(format, args...))
}

// near returns a short source window around pos for error messages.
func near(src string, pos int) string {
	const window = 16
	lo := pos - window
	if lo < 0 {
		lo = 0
	}
	hi := pos + window
	if hi > len(src) {
		hi = len(src)
	}
	out := src[lo:hi]
	if lo > 0 {
		out = "…" + out
	}
	if hi < len(src) {
		out += "…"
	}
	return out
}

// tokenText renders a token for error messages (EOF included).
func tokenText(t token) string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// Parse parses one statement.
func Parse(src string) (*Stmt, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt := &Stmt{}
	if p.acceptKeyword("EXPLAIN") {
		stmt.Explain = true
	}
	switch {
	case !stmt.Explain && p.acceptKeyword("INSERT"):
		if stmt.Insert, err = p.parseInsert(); err != nil {
			return nil, err
		}
	case !stmt.Explain && p.acceptKeyword("DELETE"):
		if stmt.Delete, err = p.parseDelete(); err != nil {
			return nil, err
		}
	case !stmt.Explain && p.acceptKeyword("CREATE"):
		if stmt.Create, err = p.parseCreate(); err != nil {
			return nil, err
		}
	default:
		if stmt.Select, err = p.parseSelect(); err != nil {
			return nil, err
		}
	}
	if !p.atEOF() {
		return nil, p.errAt(p.peek(), "trailing input %s", tokenText(p.peek()))
	}
	return stmt, nil
}

// parseInsert parses the statement after the INSERT keyword.
func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	ins := &InsertStmt{}
	var err error
	if ins.Table, err = p.parseName(); err != nil {
		return nil, err
	}
	if p.acceptSymbol("(") {
		for {
			name, err := p.parseName()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, name)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Lit
		for {
			v, scale, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			row = append(row, Lit{V: v, Scale: scale})
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

// parseDelete parses the statement after the DELETE keyword.
func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	del := &DeleteStmt{}
	var err error
	if del.Table, err = p.parseName(); err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			del.Preds = append(del.Preds, *pred)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	return del, nil
}

// parseCreate parses the statement after the CREATE keyword.
func (p *parser) parseCreate() (*CreateStmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	cr := &CreateStmt{}
	var err error
	if cr.Table, err = p.parseName(); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseName()
		if err != nil {
			return nil, err
		}
		cr.Cols = append(cr.Cols, CreateCol{Name: name, Type: typ})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	// CREATE TABLE t (...) PARTITION BY HASH(col) PARTITIONS n
	if p.acceptKeyword("PARTITION") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		kindTok := p.peek()
		kind, err := p.parseName()
		if err != nil {
			return nil, err
		}
		if !strings.EqualFold(kind, "hash") && !strings.EqualFold(kind, "range") {
			return nil, p.errAt(kindTok, "unknown partition kind %q (HASH, RANGE)", kind)
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		colTok := p.peek()
		col, err := p.parseName()
		if err != nil {
			return nil, err
		}
		declared := false
		for _, c := range cr.Cols {
			if strings.EqualFold(c.Name, col) {
				col = c.Name
				declared = true
				break
			}
		}
		if !declared {
			return nil, p.errAt(colTok, "partition column %s is not declared by table %s", col, cr.Table)
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("PARTITIONS"); err != nil {
			return nil, err
		}
		nTok := p.peek()
		n, scale, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if scale != 1 || n < 1 {
			return nil, p.errAt(nTok, "PARTITIONS takes a positive integer")
		}
		cr.PartKind = strings.ToLower(kind)
		cr.PartCol = col
		cr.PartN = int(n)
	}
	return cr, nil
}

func (p *parser) peek() token { return p.toks[p.at] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.at]
	if t.kind != tokEOF {
		p.at++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errAt(p.peek(), "expected %s, found %s", kw, tokenText(p.peek()))
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if (t.kind == tokSymbol || t.kind == tokOp) && t.text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errAt(p.peek(), "expected %q, found %s", sym, tokenText(p.peek()))
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	for {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, *item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.parseName()
	if err != nil {
		return nil, err
	}
	sel.From = tbl
	for p.acceptKeyword("JOIN") {
		join := JoinClause{}
		if join.Table, err = p.parseName(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		if join.LeftCol, err = p.parseQualCol(); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		if join.RightCol, err = p.parseQualCol(); err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, join)
	}
	if p.acceptKeyword("WHERE") {
		if sel.Where, err = p.parseWhere(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseQualCol()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		for {
			hp, err := p.parseHavingPred()
			if err != nil {
				return nil, err
			}
			sel.Having = append(sel.Having, *hp)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			item, err := p.parseOrderItem()
			if err != nil {
				return nil, err
			}
			sel.OrderBy = append(sel.OrderBy, *item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		at := p.peek()
		n, scale, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if scale != 1 || n <= 0 {
			return nil, p.errAt(at, "LIMIT takes a positive integer")
		}
		sel.Limit = n
	}
	return sel, nil
}

// parseWhere parses the WHERE boolean expression and normalizes it to
// conjunctive normal form: a list of groups, each a single predicate or a
// disjunction of predicates. A bare (unparenthesized) OR is accepted only
// when the whole clause is that one disjunction — mixed with AND its SQL
// precedence (OR loosest) would not survive the CNF shape, so the parser
// demands parentheses instead of silently rebinding, pointing at the
// offending OR. An OR branch that is itself a conjunction has no CNF home
// in the engine's query model and is rejected the same way.
func (p *parser) parseWhere() ([]PredGroup, error) {
	var groups []PredGroup
	var bareOr *token
	for {
		group, bareTok, err := p.parseOrGroup()
		if err != nil {
			return nil, err
		}
		if bareTok != nil && bareOr == nil {
			bareOr = bareTok
		}
		groups = append(groups, *group)
		if !p.acceptKeyword("AND") {
			break
		}
	}
	if bareOr != nil && len(groups) > 1 {
		return nil, p.errAt(*bareOr, "OR mixed with AND is ambiguous here; parenthesize the OR group, e.g. (a < 1 OR b > 2) AND c = 3")
	}
	return groups, nil
}

// parseOrGroup parses boolprim {OR boolprim} where every branch must be a
// single predicate or a parenthesized disjunction (flattened in). The
// returned token is the first bare OR keyword, nil if none appeared.
func (p *parser) parseOrGroup() (*PredGroup, *token, error) {
	group := &PredGroup{}
	if err := p.parseBoolPrim(group); err != nil {
		return nil, nil, err
	}
	var bare *token
	for {
		at := p.peek()
		if !p.acceptKeyword("OR") {
			return group, bare, nil
		}
		if bare == nil {
			bare = &at
		}
		if err := p.parseBoolPrim(group); err != nil {
			return nil, nil, err
		}
	}
}

// parseBoolPrim parses one predicate or a parenthesized boolean
// expression, appending its disjuncts to group. A parenthesized
// expression may only contain OR (a disjunction): AND inside OR would
// need a distributed rewrite the query model does not perform.
func (p *parser) parseBoolPrim(group *PredGroup) error {
	if p.acceptSymbol("(") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return err
			}
			group.Preds = append(group.Preds, *pred)
			if p.acceptKeyword("OR") {
				continue
			}
			if and := p.peek(); p.acceptKeyword("AND") {
				return p.errAt(and, "AND inside a parenthesized OR is not supported; rewrite the WHERE clause in conjunctive normal form (ANDs of ORs)")
			}
			break
		}
		return p.expectSymbol(")")
	}
	pred, err := p.parsePred()
	if err != nil {
		return err
	}
	group.Preds = append(group.Preds, *pred)
	return nil
}

// parseAggRef parses an aggregate call (sum(expr), count(*), ...) for
// HAVING and ORDER BY positions.
func (p *parser) parseAggRef() (*AggRef, error) {
	t := p.peek()
	if t.kind != tokIdent || !aggNames[strings.ToLower(t.text)] {
		return nil, p.errAt(t, "expected an aggregate call, found %s", tokenText(t))
	}
	ref := &AggRef{Func: strings.ToLower(t.text)}
	p.advance()
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.acceptSymbol("*") {
		if ref.Func != "count" {
			return nil, p.errAt(t, "%s(*) is not valid", ref.Func)
		}
		ref.Star = true
	} else {
		expr, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		ref.Expr = expr
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return ref, nil
}

// parseHavingPred parses one HAVING conjunct: aggcall cmp literal or
// aggcall BETWEEN literal AND literal.
func (p *parser) parseHavingPred() (*HavingPred, error) {
	ref, err := p.parseAggRef()
	if err != nil {
		return nil, err
	}
	hp := &HavingPred{Agg: *ref}
	if p.acceptKeyword("BETWEEN") {
		if hp.Lo, hp.LoScale, err = p.parseNumber(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		if hp.Hi, hp.HiScale, err = p.parseNumber(); err != nil {
			return nil, err
		}
		hp.Op = "between"
		return hp, nil
	}
	t := p.peek()
	if t.kind != tokOp {
		return nil, p.errAt(t, "expected comparison after aggregate, found %s", tokenText(t))
	}
	p.advance()
	switch t.text {
	case "=", "<", "<=", ">", ">=":
		hp.Op = t.text
	default:
		return nil, p.errAt(t, "unsupported operator %q", t.text)
	}
	if hp.Lo, hp.LoScale, err = p.parseNumber(); err != nil {
		return nil, err
	}
	return hp, nil
}

// parseOrderItem parses one ORDER BY column: an aggregate call or a bare
// (possibly qualified) column/alias name, with an optional direction.
func (p *parser) parseOrderItem() (*OrderItem, error) {
	item := &OrderItem{}
	t := p.peek()
	if t.kind == tokIdent && aggNames[strings.ToLower(t.text)] &&
		p.toks[p.at+1].kind == tokSymbol && p.toks[p.at+1].text == "(" {
		ref, err := p.parseAggRef()
		if err != nil {
			return nil, err
		}
		item.Agg = ref
	} else {
		col, err := p.parseQualCol()
		if err != nil {
			return nil, err
		}
		item.Col = &col
	}
	switch {
	case p.acceptKeyword("DESC"):
		item.Desc = true
	case p.acceptKeyword("ASC"):
	}
	return item, nil
}

var aggNames = map[string]bool{
	"sum": true, "count": true, "min": true, "max": true, "avg": true,
}

func (p *parser) parseItem() (*SelectItem, error) {
	t := p.peek()
	item := &SelectItem{}
	if t.kind == tokIdent {
		lower := strings.ToLower(t.text)
		if strings.EqualFold(t.text, "bwdecompose") {
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			col, err := p.parseQualCol()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(","); err != nil {
				return nil, err
			}
			bits, _, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			item.Agg = "bwdecompose"
			item.DCol = &col
			item.DBits = bits
			return item, p.parseAlias(item)
		}
		if aggNames[lower] && p.toks[p.at+1].kind == tokSymbol && p.toks[p.at+1].text == "(" {
			ref, err := p.parseAggRef()
			if err != nil {
				return nil, err
			}
			item.Agg = ref.Func
			item.Star = ref.Star
			item.Expr = ref.Expr
			return item, p.parseAlias(item)
		}
	}
	expr, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	item.Expr = expr
	return item, p.parseAlias(item)
}

func (p *parser) parseAlias(item *SelectItem) error {
	if p.acceptKeyword("AS") {
		name, err := p.parseName()
		if err != nil {
			return err
		}
		item.Alias = name
	}
	return nil
}

func (p *parser) parsePred() (*Pred, error) {
	col, err := p.parseQualCol()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, loScale, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, hiScale, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return &Pred{Col: col, Op: "between", Lo: lo, Hi: hi, LoScale: loScale, HiScale: hiScale}, nil
	}
	t := p.peek()
	if t.kind != tokOp {
		return nil, p.errAt(t, "expected comparison after %s, found %s", col, tokenText(t))
	}
	p.advance()
	v, vScale, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	switch t.text {
	case "=", "<", "<=", ">", ">=":
		return &Pred{Col: col, Op: t.text, Lo: v, LoScale: vScale}, nil
	default:
		return nil, p.errAt(t, "unsupported operator %q", t.text)
	}
}

func (p *parser) parseArith() (*ArithE, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &ArithE{Op: "+", L: left, R: right}
		case p.acceptSymbol("-"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &ArithE{Op: "-", L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTerm() (*ArithE, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("*") {
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &ArithE{Op: "*", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (*ArithE, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		v, scale, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return &ArithE{Op: "lit", Lit: v, Scale: scale}, nil
	case t.kind == tokIdent:
		col, err := p.parseQualCol()
		if err != nil {
			return nil, err
		}
		return &ArithE{Op: "col", Col: col}, nil
	case p.acceptSymbol("("):
		inner, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, p.errAt(t, "unexpected %s in expression", tokenText(t))
	}
}

func (p *parser) parseName() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errAt(t, "expected name, found %s", tokenText(t))
	}
	p.advance()
	return strings.ToLower(t.text), nil
}

func (p *parser) parseQualCol() (QualCol, error) {
	first, err := p.parseName()
	if err != nil {
		return QualCol{}, err
	}
	if p.acceptSymbol(".") {
		second, err := p.parseName()
		if err != nil {
			return QualCol{}, err
		}
		return QualCol{Table: first, Name: second}, nil
	}
	return QualCol{Name: first}, nil
}

// parseNumber parses an integer or decimal literal, returning the scaled
// integer value and the scale (10^fractional digits).
func (p *parser) parseNumber() (value, scale int64, err error) {
	neg := p.acceptSymbol("-")
	t := p.peek()
	if t.kind != tokNumber {
		return 0, 0, p.errAt(t, "expected number, found %s", tokenText(t))
	}
	p.advance()
	text := t.text
	scale = 1
	intPart := text
	if dot := strings.IndexByte(text, '.'); dot >= 0 {
		frac := text[dot+1:]
		intPart = text[:dot] + frac
		for range frac {
			scale *= 10
		}
	}
	var v int64
	for _, c := range intPart {
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, scale, nil
}
