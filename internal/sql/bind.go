package sql

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/store"
)

// Bind resolves a parsed statement against the catalog into a plan.Query.
// bwdecompose pseudo-queries are reported through the Decompose field of
// the returned Binding; DML statements (INSERT / DELETE / CREATE TABLE)
// through their spec fields.
type Binding struct {
	Query     plan.Query
	Explain   bool
	Decompose []DecomposeSpec // non-empty for bwdecompose statements
	Insert    *InsertSpec
	Delete    *DeleteSpec
	Create    *CreateSpec
}

// DecomposeSpec is one bwdecompose(col, bits) request.
type DecomposeSpec struct {
	Table string
	Col   string
	Bits  uint
}

// InsertSpec is a bound INSERT: rows in table schema order, values already
// aligned to each column's fixed-point scale.
type InsertSpec struct {
	Table string
	Rows  [][]int64
}

// DeleteSpec is a bound DELETE: conjunctive range filters, scale-aligned.
type DeleteSpec struct {
	Table   string
	Filters []plan.Filter
}

// CreateSpec is a bound CREATE TABLE. Part is non-nil when the statement
// carried a PARTITION BY clause; the executor then builds a partitioned
// fact table instead of a plain one.
type CreateSpec struct {
	Table string
	Defs  []store.ColumnDef
	Part  *shard.Spec
}

// IsWrite reports whether executing the binding mutates catalog state
// (bwdecompose or DML). Write bindings are executed inline by the
// scheduler and never plan-cached.
func (b *Binding) IsWrite() bool {
	return len(b.Decompose) > 0 || b.Insert != nil || b.Delete != nil || b.Create != nil
}

// Tables returns the table names the binding depends on — the engine's
// plan cache records their schema epochs to invalidate stale entries.
func (b *Binding) Tables() []string {
	switch {
	case b.Insert != nil:
		return []string{b.Insert.Table}
	case b.Delete != nil:
		return []string{b.Delete.Table}
	case b.Create != nil:
		return nil // creates its dependency; never cached anyway
	case len(b.Decompose) > 0:
		out := make([]string, 0, len(b.Decompose))
		for _, d := range b.Decompose {
			out = append(out, d.Table)
		}
		return out
	default:
		out := []string{b.Query.Table}
		for _, j := range b.Query.Joins {
			out = append(out, j.Dim)
		}
		return out
	}
}

// Bind validates names and shapes the statement into the engine's query
// model.
func Bind(stmt *Stmt, c *plan.Catalog) (*Binding, error) {
	switch {
	case stmt.Insert != nil:
		return bindInsert(stmt.Insert, c)
	case stmt.Delete != nil:
		return bindDelete(stmt.Delete, c)
	case stmt.Create != nil:
		return bindCreate(stmt.Create, c)
	}
	sel := stmt.Select
	b := &Binding{Explain: stmt.Explain}
	// SchemaTable, not Table: partitioned fact tables bind by their wrapper
	// name (the executor scatter-gathers over the partitions).
	if _, err := c.SchemaTable(sel.From); err != nil {
		return nil, err
	}

	// bwdecompose statements: every item must be a bwdecompose call.
	if len(sel.Items) > 0 && sel.Items[0].Agg == "bwdecompose" {
		for _, item := range sel.Items {
			if item.Agg != "bwdecompose" {
				return nil, fmt.Errorf("sql: bwdecompose cannot be mixed with other select items")
			}
			if item.DBits <= 0 || item.DBits > 63 {
				return nil, fmt.Errorf("sql: bwdecompose bits %d out of range", item.DBits)
			}
			tbl := sel.From
			if item.DCol.Table != "" {
				tbl = item.DCol.Table
			}
			b.Decompose = append(b.Decompose, DecomposeSpec{Table: tbl, Col: item.DCol.Name, Bits: uint(item.DBits)})
		}
		return b, nil
	}

	q := plan.Query{Table: sel.From}
	dims := map[string]bool{}
	for _, jc := range sel.Joins {
		fkSide, pkSide := jc.LeftCol, jc.RightCol
		// Normalize: the fact side is sel.From.
		if fkSide.Table == jc.Table || pkSide.Table == sel.From {
			fkSide, pkSide = pkSide, fkSide
		}
		if fkSide.Table != "" && fkSide.Table != sel.From {
			return nil, fmt.Errorf("sql: join condition must relate %s to %s", sel.From, jc.Table)
		}
		if pkSide.Table != "" && pkSide.Table != jc.Table {
			return nil, fmt.Errorf("sql: join condition must relate %s to %s", sel.From, jc.Table)
		}
		if dims[jc.Table] {
			return nil, fmt.Errorf("sql: dimension table %s joined twice", jc.Table)
		}
		dims[jc.Table] = true
		q.Joins = append(q.Joins, plan.JoinSpec{FKCol: fkSide.Name, Dim: jc.Table, DimPK: pkSide.Name})
	}

	// onDim resolves a column reference to its dimension table ("" = the
	// fact table; unqualified names bind to the fact side).
	onDim := func(col QualCol) (string, error) {
		switch {
		case col.Table == "" || col.Table == sel.From:
			return "", nil
		case dims[col.Table]:
			return col.Table, nil
		default:
			return "", fmt.Errorf("sql: unknown table %q", col.Table)
		}
	}

	// joinFor finds the join spec owning a dimension table.
	joinFor := func(dim string) *plan.JoinSpec {
		for i := range q.Joins {
			if q.Joins[i].Dim == dim {
				return &q.Joins[i]
			}
		}
		return nil
	}

	// WHERE: conjuncts canonicalized to closed ranges (decimal literals
	// aligned to the column's fixed-point scale); disjunction groups
	// become Or entries and must be entirely fact-side — a dimension
	// disjunct would have to survive the join probe, which the candidate
	// union does not model.
	for _, group := range sel.Where {
		if len(group.Preds) == 1 {
			p := group.Preds[0]
			dim, err := onDim(p.Col)
			if err != nil {
				return nil, err
			}
			tbl := sel.From
			if dim != "" {
				tbl = dim
			}
			f, err := filterFromPred(c, tbl, p)
			if err != nil {
				return nil, err
			}
			if dim != "" {
				js := joinFor(dim)
				js.DimFilters = append(js.DimFilters, f)
			} else {
				q.Filters = append(q.Filters, f)
			}
			continue
		}
		var disj []plan.Filter
		for _, p := range group.Preds {
			dim, err := onDim(p.Col)
			if err != nil {
				return nil, err
			}
			if dim != "" {
				return nil, fmt.Errorf("sql: OR over dimension column %s is not supported (disjunctions must be fact-side)", p.Col)
			}
			f, err := filterFromPred(c, sel.From, p)
			if err != nil {
				return nil, err
			}
			disj = append(disj, f)
		}
		q.Or = append(q.Or, disj)
	}

	// GROUP BY columns (fact side only, like the engine).
	groupSet := map[string]int{}
	for gi, g := range sel.GroupBy {
		if dim, err := onDim(g); err != nil {
			return nil, err
		} else if dim != "" {
			return nil, fmt.Errorf("sql: grouping by dimension columns is not supported")
		}
		q.GroupBy = append(q.GroupBy, g.Name)
		groupSet[g.Name] = gi
	}

	// SELECT items: plain grouped columns or aggregates.
	for i, item := range sel.Items {
		name := item.Alias
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		if item.Agg == "" {
			// A bare expression must be a grouped column reference.
			if item.Expr == nil || item.Expr.Op != "col" {
				return nil, fmt.Errorf("sql: select item %d is neither an aggregate nor a grouped column", i+1)
			}
			if _, ok := groupSet[item.Expr.Col.Name]; !ok {
				return nil, fmt.Errorf("sql: select item %d is neither an aggregate nor a grouped column", i+1)
			}
			continue // grouped columns appear as result keys automatically
		}
		spec, err := bindAggCall(AggRef{Func: item.Agg, Star: item.Star, Expr: item.Expr}, name, onDim)
		if err != nil {
			return nil, err
		}
		q.Aggs = append(q.Aggs, *spec)
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("sql: query computes no aggregates (projection-only queries are not supported)")
	}

	// HAVING: each conjunct binds its aggregate call to an existing output
	// aggregate when one matches structurally, otherwise computes it as a
	// hidden aggregate that never reaches the result rows.
	for _, hp := range sel.Having {
		idx, err := resolveAgg(&q, hp.Agg, onDim)
		if err != nil {
			return nil, err
		}
		f, err := havingRange(c, sel.From, hp, onDim)
		if err != nil {
			return nil, err
		}
		q.Having = append(q.Having, plan.HavingFilter{Agg: idx, Lo: f.Lo, Hi: f.Hi})
	}

	// ORDER BY: each item is an alias, a grouped column, or an aggregate
	// call (resolved like HAVING).
	for _, oi := range sel.OrderBy {
		key := plan.OrderKey{Desc: oi.Desc}
		switch {
		case oi.Agg != nil:
			idx, err := resolveAgg(&q, *oi.Agg, onDim)
			if err != nil {
				return nil, err
			}
			key.Index = idx
		case oi.Col.Table == "" && aliasIndex(&q, oi.Col.Name) >= 0:
			key.Index = aliasIndex(&q, oi.Col.Name)
		default:
			dim, err := onDim(*oi.Col)
			if err != nil {
				return nil, err
			}
			gi, ok := groupSet[oi.Col.Name]
			if dim != "" || !ok {
				return nil, fmt.Errorf("sql: ORDER BY %s is neither an output aggregate nor a grouped column", oi.Col)
			}
			key.Key = true
			key.Index = gi
		}
		q.OrderBy = append(q.OrderBy, key)
	}
	if sel.Limit > 0 {
		q.Limit = int(sel.Limit)
	}
	b.Query = q
	return b, nil
}

// bindAggCall lowers one aggregate call into an AggSpec.
func bindAggCall(ref AggRef, name string, onDim func(QualCol) (string, error)) (*plan.AggSpec, error) {
	spec := &plan.AggSpec{Name: name}
	switch ref.Func {
	case "count":
		spec.Func = plan.Count
		if !ref.Star && ref.Expr != nil {
			// count(col) == count(*) in this NULL-free engine.
			if _, err := bindArith(ref.Expr, onDim); err != nil {
				return nil, err
			}
		}
	case "sum", "min", "max", "avg":
		spec.Func = map[string]plan.AggFunc{
			"sum": plan.Sum, "min": plan.Min, "max": plan.Max, "avg": plan.Avg,
		}[ref.Func]
		if ref.Expr == nil {
			return nil, fmt.Errorf("sql: %s needs an argument", ref.Func)
		}
		expr, err := bindArith(ref.Expr, onDim)
		if err != nil {
			return nil, err
		}
		spec.Expr = expr
	default:
		return nil, fmt.Errorf("sql: unknown aggregate %q", ref.Func)
	}
	return spec, nil
}

// resolveAgg finds the output aggregate structurally equal to the call
// (same function, same bound expression text — Count matches any Count,
// since count(col) == count(*) here), or appends a hidden aggregate for
// it and returns its index.
func resolveAgg(q *plan.Query, ref AggRef, onDim func(QualCol) (string, error)) (int, error) {
	spec, err := bindAggCall(ref, "", onDim)
	if err != nil {
		return 0, err
	}
	for i, a := range q.Aggs {
		if a.Func != spec.Func {
			continue
		}
		if a.Func == plan.Count || exprEqual(a.Expr, spec.Expr) {
			return i, nil
		}
	}
	spec.Hidden = true
	spec.Name = fmt.Sprintf("%s%d", spec.Func, len(q.Aggs)+1)
	q.Aggs = append(q.Aggs, *spec)
	return len(q.Aggs) - 1, nil
}

// exprEqual compares bound expressions structurally via their canonical
// rendering.
func exprEqual(a, b plan.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// aliasIndex returns the index of the visible aggregate named name, or -1.
func aliasIndex(q *plan.Query, name string) int {
	for i, a := range q.Aggs {
		if !a.Hidden && a.Name == name {
			return i
		}
	}
	return -1
}

// havingRange canonicalizes a HAVING comparison into a closed range over
// the aggregate's value. When the aggregate is over a single bare column,
// decimal literals align to that column's fixed-point scale (sums and
// extrema preserve the scale); otherwise the literal's own scale is used.
func havingRange(c *plan.Catalog, fact string, hp HavingPred, onDim func(QualCol) (string, error)) (plan.Filter, error) {
	align := func(v, litScale int64) (int64, error) {
		if hp.Agg.Expr != nil && hp.Agg.Expr.Op == "col" {
			dim, err := onDim(hp.Agg.Expr.Col)
			if err != nil {
				return 0, err
			}
			tbl := fact
			if dim != "" {
				tbl = dim
			}
			return alignScale(c, tbl, hp.Agg.Expr.Col.Name, v, litScale)
		}
		if litScale > 1 {
			return 0, fmt.Errorf("sql: decimal literal in HAVING needs a single-column aggregate to infer the scale from")
		}
		return v, nil
	}
	lo, err := align(hp.Lo, hp.LoScale)
	if err != nil {
		return plan.Filter{}, err
	}
	hi, err := align(hp.Hi, hp.HiScale)
	if err != nil {
		return plan.Filter{}, err
	}
	f := plan.Filter{}
	switch hp.Op {
	case "=":
		f.Lo, f.Hi = lo, lo
	case "<":
		f.Lo, f.Hi = plan.NoLo, lo-1
	case "<=":
		f.Lo, f.Hi = plan.NoLo, lo
	case ">":
		f.Lo, f.Hi = lo+1, plan.NoHi
	case ">=":
		f.Lo, f.Hi = lo, plan.NoHi
	case "between":
		f.Lo, f.Hi = lo, hi
	default:
		return plan.Filter{}, fmt.Errorf("sql: unsupported HAVING operator %q", hp.Op)
	}
	return f, nil
}

// filterFromPred canonicalizes one parsed predicate into a closed-range
// plan.Filter, aligning decimal literals to the column's fixed-point scale.
func filterFromPred(c *plan.Catalog, table string, p Pred) (plan.Filter, error) {
	lo, err := alignScale(c, table, p.Col.Name, p.Lo, p.LoScale)
	if err != nil {
		return plan.Filter{}, err
	}
	hi, err := alignScale(c, table, p.Col.Name, p.Hi, p.HiScale)
	if err != nil {
		return plan.Filter{}, err
	}
	f := plan.Filter{Col: p.Col.Name}
	switch p.Op {
	case "=":
		f.Lo, f.Hi = lo, lo
	case "<":
		f.Lo, f.Hi = plan.NoLo, lo-1
	case "<=":
		f.Lo, f.Hi = plan.NoLo, lo
	case ">":
		f.Lo, f.Hi = lo+1, plan.NoHi
	case ">=":
		f.Lo, f.Hi = lo, plan.NoHi
	case "between":
		f.Lo, f.Hi = lo, hi
	default:
		return plan.Filter{}, fmt.Errorf("sql: unsupported predicate %q", p.Op)
	}
	return f, nil
}

// bindInsert shapes a parsed INSERT into schema-order rows with every
// literal aligned to its column's fixed-point scale. With an explicit
// column list the values are re-ordered; every table column must be
// covered (the engine has no NULLs).
func bindInsert(ins *InsertStmt, c *plan.Catalog) (*Binding, error) {
	t, err := c.SchemaTable(ins.Table)
	if err != nil {
		return nil, err
	}
	schema := t.ColumnNames()
	order := make([]int, len(schema)) // schema index -> value index
	if ins.Cols == nil {
		for i := range order {
			order[i] = i
		}
	} else {
		if len(ins.Cols) != len(schema) {
			return nil, fmt.Errorf("sql: insert into %s lists %d columns, table has %d (all columns are required)",
				ins.Table, len(ins.Cols), len(schema))
		}
		pos := make(map[string]int, len(ins.Cols))
		for vi, name := range ins.Cols {
			if _, dup := pos[name]; dup {
				return nil, fmt.Errorf("sql: insert into %s names column %s twice", ins.Table, name)
			}
			pos[name] = vi
		}
		for si, name := range schema {
			vi, ok := pos[name]
			if !ok {
				return nil, fmt.Errorf("sql: insert into %s does not cover column %s", ins.Table, name)
			}
			order[si] = vi
		}
	}
	// Per-column scales are constant across the statement: resolve them
	// once, not per literal (INSERTs compile on every execution).
	scales := make([]int64, len(schema))
	for si, name := range schema {
		if scales[si], err = t.ColumnScale(name); err != nil {
			return nil, err
		}
	}
	spec := &InsertSpec{Table: ins.Table, Rows: make([][]int64, 0, len(ins.Rows))}
	for r, row := range ins.Rows {
		if len(row) != len(schema) {
			return nil, fmt.Errorf("sql: insert into %s: row %d has %d values, table has %d columns",
				ins.Table, r+1, len(row), len(schema))
		}
		out := make([]int64, len(schema))
		for si, name := range schema {
			lit := row[order[si]]
			v, ok := alignToScale(scales[si], lit.V, lit.Scale)
			if !ok {
				return nil, fmt.Errorf("sql: literal has more fractional digits than column %s.%s (scale %d)",
					ins.Table, name, scales[si])
			}
			out[si] = v
		}
		spec.Rows = append(spec.Rows, out)
	}
	return &Binding{Insert: spec}, nil
}

// bindDelete lowers the (optional) WHERE conjunction into range filters.
func bindDelete(del *DeleteStmt, c *plan.Catalog) (*Binding, error) {
	if _, err := c.SchemaTable(del.Table); err != nil {
		return nil, err
	}
	spec := &DeleteSpec{Table: del.Table}
	for _, p := range del.Preds {
		if p.Col.Table != "" && p.Col.Table != del.Table {
			return nil, fmt.Errorf("sql: delete from %s cannot filter on %q", del.Table, p.Col.Table)
		}
		f, err := filterFromPred(c, del.Table, p)
		if err != nil {
			return nil, err
		}
		spec.Filters = append(spec.Filters, f)
	}
	return &Binding{Delete: spec}, nil
}

// bindCreate validates the column types via the store's shared type
// mapping. Supported: int (scale 1) and decimalN (N fractional digits,
// scale 10^N). Dictionary and date columns enter the catalog through the
// CSV loader, which owns their encodings.
func bindCreate(cr *CreateStmt, c *plan.Catalog) (*Binding, error) {
	spec := &CreateSpec{Table: cr.Table}
	for _, col := range cr.Cols {
		scale, err := store.ParseTypeScale(col.Type)
		if err != nil {
			return nil, fmt.Errorf("sql: column %s: %w", col.Name, err)
		}
		spec.Defs = append(spec.Defs, store.ColumnDef{Name: col.Name, Scale: scale, Width: bat.Width32})
	}
	if cr.PartN > 0 {
		kind, err := shard.ParseKind(cr.PartKind)
		if err != nil {
			return nil, fmt.Errorf("sql: %w", err)
		}
		part := shard.Spec{Kind: kind, Col: cr.PartCol, N: cr.PartN}
		if err := part.Validate(); err != nil {
			return nil, fmt.Errorf("sql: %w", err)
		}
		spec.Part = &part
	}
	return &Binding{Create: spec}, nil
}

// alignScale converts a literal parsed at litScale (10^fractional digits)
// into the column's storage scale. A literal with more fractional digits
// than the column stores is rejected.
func alignScale(c *plan.Catalog, table, col string, v, litScale int64) (int64, error) {
	t, err := c.SchemaTable(table)
	if err != nil {
		return 0, err
	}
	colScale, err := t.ColumnScale(col)
	if err != nil {
		return 0, err
	}
	out, ok := alignToScale(colScale, v, litScale)
	if !ok {
		return 0, fmt.Errorf("sql: literal has more fractional digits than column %s.%s (scale %d)", table, col, colScale)
	}
	return out, nil
}

// alignToScale is the scale arithmetic behind alignScale, for callers that
// already resolved the column scale. ok is false when the literal carries
// more fractional digits than the column stores.
func alignToScale(colScale, v, litScale int64) (int64, bool) {
	if litScale <= 1 {
		litScale = 1
	}
	if litScale > colScale {
		return 0, false
	}
	return v * (colScale / litScale), true
}

// bindArith lowers an AST expression into the plan expression model.
// Multiplication of two decimal literals/columns is fixed-point: the scale
// divisor is taken from the literal's own fractional digits (integer
// operands multiply at scale 1).
func bindArith(e *ArithE, onDim func(QualCol) (string, error)) (plan.Expr, error) {
	switch e.Op {
	case "col":
		dim, err := onDim(e.Col)
		if err != nil {
			return nil, err
		}
		if dim != "" {
			return plan.DimCol(dim, e.Col.Name), nil
		}
		return plan.Col(e.Col.Name), nil
	case "lit":
		return plan.Const(e.Lit), nil
	case "+", "-", "*":
		l, err := bindArith(e.L, onDim)
		if err != nil {
			return nil, err
		}
		r, err := bindArith(e.R, onDim)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "+":
			return plan.Add(l, r), nil
		case "-":
			return plan.Sub(l, r), nil
		default:
			scale := int64(1)
			if e.L.Op == "lit" && e.L.Scale > 1 {
				scale = e.L.Scale
			}
			if e.R.Op == "lit" && e.R.Scale > 1 {
				scale = e.R.Scale
			}
			return plan.MulScaled(l, r, scale), nil
		}
	default:
		return nil, fmt.Errorf("sql: unknown expression op %q", e.Op)
	}
}

// Compile parses and binds a statement into an executable Binding — the
// reusable front half of Run. A Binding is immutable once compiled:
// executing it never mutates it, so compiled bindings may be cached (the
// server's plan cache stores them keyed on Normalize'd text) and executed
// concurrently.
func Compile(c *plan.Catalog, src string) (*Binding, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Bind(stmt, c)
}

// Exec runs a compiled binding with a background context; see ExecCtx.
func Exec(c *plan.Catalog, b *Binding, opts plan.ExecOpts, classic bool) (*plan.Result, error) {
	return ExecCtx(context.Background(), c, b, opts, classic)
}

// ExecCtx runs a compiled binding under ctx. bwdecompose and DML
// statements mutate the store and return a Result whose Plan lines carry
// the outcome message and whose Meter carries the simulated write cost
// (including any implicit compaction); EXPLAIN returns a Result with
// only the plan listing. Classic controls which executor runs the query
// (the A&R executor by default, matching Run). Cancellation is cooperative
// — the executors poll ctx between pipeline stages.
//
// Front-ends should not call this directly: internal/engine wraps it with
// session routing, admission control and plan caching.
func ExecCtx(ctx context.Context, c *plan.Catalog, b *Binding, opts plan.ExecOpts, classic bool) (*plan.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch {
	case b.Create != nil:
		if b.Create.Part != nil {
			p, err := c.CreatePartitionedTable(b.Create.Table, b.Create.Defs, *b.Create.Part)
			if err != nil {
				return nil, err
			}
			return &plan.Result{Plan: []string{fmt.Sprintf("created table %s (%d columns, %s)", b.Create.Table, len(b.Create.Defs), p.Spec)}}, nil
		}
		if _, err := c.CreateTable(b.Create.Table, b.Create.Defs); err != nil {
			return nil, err
		}
		return &plan.Result{Plan: []string{fmt.Sprintf("created table %s (%d columns)", b.Create.Table, len(b.Create.Defs))}}, nil
	case b.Insert != nil:
		m := device.NewMeter(c.System())
		n, err := c.InsertRows(m, b.Insert.Table, b.Insert.Rows)
		if err != nil {
			return nil, err
		}
		return &plan.Result{Meter: m, Plan: []string{fmt.Sprintf("inserted %d rows into %s", n, b.Insert.Table)}}, nil
	case b.Delete != nil:
		m := device.NewMeter(c.System())
		n, err := c.DeleteRows(m, b.Delete.Table, b.Delete.Filters)
		if err != nil {
			return nil, err
		}
		return &plan.Result{Meter: m, Plan: []string{fmt.Sprintf("deleted %d rows from %s", n, b.Delete.Table)}}, nil
	}
	if len(b.Decompose) > 0 {
		// Metered: a decompose over a table with delta rows or deletions
		// compacts it first, and that merge's bus traffic must reach the
		// caller's totals like any other write cost.
		m := device.NewMeter(c.System())
		for _, d := range b.Decompose {
			if _, err := c.DecomposeMetered(m, d.Table, d.Col, d.Bits); err != nil {
				return nil, err
			}
		}
		return &plan.Result{Meter: m, Plan: []string{"decomposed"}}, nil
	}
	var res *plan.Result
	var err error
	if classic {
		res, err = c.ExecClassicCtx(ctx, b.Query, opts)
	} else {
		res, err = c.ExecARCtx(ctx, b.Query, opts)
	}
	if err != nil {
		return nil, err
	}
	if b.Explain {
		return &plan.Result{Plan: res.Plan, Meter: res.Meter}, nil
	}
	return res, nil
}

// Run parses, binds and executes a statement under the A&R executor. It is
// a convenience for tests and one-off programs; front-ends embed
// internal/engine instead.
func Run(c *plan.Catalog, src string, opts plan.ExecOpts) (*plan.Result, error) {
	b, err := Compile(c, src)
	if err != nil {
		return nil, err
	}
	return Exec(c, b, opts, false)
}

// Normalize canonicalizes statement text for plan-cache keying: tokens are
// re-serialized with single spaces and identifiers are lower-cased (the
// parser lower-cases names anyway), so queries differing only in whitespace
// or keyword case share one cache entry. Unlexable text normalizes to
// itself, unchanged, and will miss the cache — the parser reports the
// error. (It must not be trimmed here: trimming can turn unlexable text
// into lexable text, which would break Normalize's idempotence and with it
// the guarantee that a cache key re-normalizes to itself.)
func Normalize(src string) string {
	toks, err := tokenize(src)
	if err != nil {
		return src
	}
	var sb strings.Builder
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		if t.kind == tokIdent {
			sb.WriteString(strings.ToLower(t.text))
		} else if t.kind == tokString {
			sb.WriteByte('\'')
			sb.WriteString(t.text)
			sb.WriteByte('\'')
		} else {
			sb.WriteString(t.text)
		}
	}
	return sb.String()
}

// Format renders a result like a small SQL client.
func Format(res *plan.Result) string {
	if res == nil {
		return "ok\n"
	}
	if res.Rows == nil && len(res.Plan) > 0 {
		return strings.Join(res.Plan, "\n") + "\n"
	}
	return plan.FormatRows(res.Rows)
}
