package sql

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/store"
)

// Bind resolves a parsed statement against the catalog into a plan.Query.
// bwdecompose pseudo-queries are reported through the Decompose field of
// the returned Binding; DML statements (INSERT / DELETE / CREATE TABLE)
// through their spec fields.
type Binding struct {
	Query     plan.Query
	Explain   bool
	Decompose []DecomposeSpec // non-empty for bwdecompose statements
	Insert    *InsertSpec
	Delete    *DeleteSpec
	Create    *CreateSpec
}

// DecomposeSpec is one bwdecompose(col, bits) request.
type DecomposeSpec struct {
	Table string
	Col   string
	Bits  uint
}

// InsertSpec is a bound INSERT: rows in table schema order, values already
// aligned to each column's fixed-point scale.
type InsertSpec struct {
	Table string
	Rows  [][]int64
}

// DeleteSpec is a bound DELETE: conjunctive range filters, scale-aligned.
type DeleteSpec struct {
	Table   string
	Filters []plan.Filter
}

// CreateSpec is a bound CREATE TABLE.
type CreateSpec struct {
	Table string
	Defs  []store.ColumnDef
}

// IsWrite reports whether executing the binding mutates catalog state
// (bwdecompose or DML). Write bindings are executed inline by the
// scheduler and never plan-cached.
func (b *Binding) IsWrite() bool {
	return len(b.Decompose) > 0 || b.Insert != nil || b.Delete != nil || b.Create != nil
}

// Tables returns the table names the binding depends on — the engine's
// plan cache records their schema epochs to invalidate stale entries.
func (b *Binding) Tables() []string {
	switch {
	case b.Insert != nil:
		return []string{b.Insert.Table}
	case b.Delete != nil:
		return []string{b.Delete.Table}
	case b.Create != nil:
		return nil // creates its dependency; never cached anyway
	case len(b.Decompose) > 0:
		out := make([]string, 0, len(b.Decompose))
		for _, d := range b.Decompose {
			out = append(out, d.Table)
		}
		return out
	default:
		out := []string{b.Query.Table}
		if b.Query.Join != nil {
			out = append(out, b.Query.Join.Dim)
		}
		return out
	}
}

// Bind validates names and shapes the statement into the engine's query
// model.
func Bind(stmt *Stmt, c *plan.Catalog) (*Binding, error) {
	switch {
	case stmt.Insert != nil:
		return bindInsert(stmt.Insert, c)
	case stmt.Delete != nil:
		return bindDelete(stmt.Delete, c)
	case stmt.Create != nil:
		return bindCreate(stmt.Create, c)
	}
	sel := stmt.Select
	b := &Binding{Explain: stmt.Explain}
	if _, err := c.Table(sel.From); err != nil {
		return nil, err
	}

	// bwdecompose statements: every item must be a bwdecompose call.
	if len(sel.Items) > 0 && sel.Items[0].Agg == "bwdecompose" {
		for _, item := range sel.Items {
			if item.Agg != "bwdecompose" {
				return nil, fmt.Errorf("sql: bwdecompose cannot be mixed with other select items")
			}
			if item.DBits <= 0 || item.DBits > 63 {
				return nil, fmt.Errorf("sql: bwdecompose bits %d out of range", item.DBits)
			}
			tbl := sel.From
			if item.DCol.Table != "" {
				tbl = item.DCol.Table
			}
			b.Decompose = append(b.Decompose, DecomposeSpec{Table: tbl, Col: item.DCol.Name, Bits: uint(item.DBits)})
		}
		return b, nil
	}

	q := plan.Query{Table: sel.From}
	var dimTable string
	if sel.Join != nil {
		fkSide, pkSide := sel.Join.LeftCol, sel.Join.RightCol
		// Normalize: the fact side is sel.From.
		if fkSide.Table == sel.Join.Table || pkSide.Table == sel.From {
			fkSide, pkSide = pkSide, fkSide
		}
		if fkSide.Table != "" && fkSide.Table != sel.From {
			return nil, fmt.Errorf("sql: join condition must relate %s to %s", sel.From, sel.Join.Table)
		}
		if pkSide.Table != "" && pkSide.Table != sel.Join.Table {
			return nil, fmt.Errorf("sql: join condition must relate %s to %s", sel.From, sel.Join.Table)
		}
		dimTable = sel.Join.Table
		q.Join = &plan.JoinSpec{FKCol: fkSide.Name, Dim: dimTable, DimPK: pkSide.Name}
	}

	onDim := func(col QualCol) (bool, error) {
		switch col.Table {
		case "", sel.From:
			return false, nil
		case dimTable:
			if dimTable == "" {
				return false, fmt.Errorf("sql: unknown table %q", col.Table)
			}
			return true, nil
		default:
			return false, fmt.Errorf("sql: unknown table %q", col.Table)
		}
	}

	// WHERE: conjunctive predicates canonicalized to closed ranges, with
	// decimal literals aligned to the column's fixed-point scale.
	for _, p := range sel.Preds {
		dim, err := onDim(p.Col)
		if err != nil {
			return nil, err
		}
		tbl := sel.From
		if dim {
			tbl = dimTable
		}
		f, err := filterFromPred(c, tbl, p)
		if err != nil {
			return nil, err
		}
		if dim {
			q.Join.DimFilters = append(q.Join.DimFilters, f)
		} else {
			q.Filters = append(q.Filters, f)
		}
	}

	// GROUP BY columns (fact side only, like the engine).
	groupSet := map[string]bool{}
	for _, g := range sel.GroupBy {
		if dim, err := onDim(g); err != nil {
			return nil, err
		} else if dim {
			return nil, fmt.Errorf("sql: grouping by dimension columns is not supported")
		}
		q.GroupBy = append(q.GroupBy, g.Name)
		groupSet[g.Name] = true
	}

	// SELECT items: plain grouped columns or aggregates.
	for i, item := range sel.Items {
		name := item.Alias
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		if item.Agg == "" {
			// A bare expression must be a grouped column reference.
			if item.Expr == nil || item.Expr.Op != "col" || !groupSet[item.Expr.Col.Name] {
				return nil, fmt.Errorf("sql: select item %d is neither an aggregate nor a grouped column", i+1)
			}
			continue // grouped columns appear as result keys automatically
		}
		spec := plan.AggSpec{Name: name}
		switch item.Agg {
		case "count":
			spec.Func = plan.Count
			if !item.Star && item.Expr != nil {
				// count(col) == count(*) in this NULL-free engine.
				if _, err := bindArith(item.Expr, onDim); err != nil {
					return nil, err
				}
			}
		case "sum", "min", "max", "avg":
			spec.Func = map[string]plan.AggFunc{
				"sum": plan.Sum, "min": plan.Min, "max": plan.Max, "avg": plan.Avg,
			}[item.Agg]
			if item.Expr == nil {
				return nil, fmt.Errorf("sql: %s needs an argument", item.Agg)
			}
			expr, err := bindArith(item.Expr, onDim)
			if err != nil {
				return nil, err
			}
			spec.Expr = expr
		default:
			return nil, fmt.Errorf("sql: unknown aggregate %q", item.Agg)
		}
		q.Aggs = append(q.Aggs, spec)
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("sql: query computes no aggregates (projection-only queries are not supported)")
	}
	b.Query = q
	return b, nil
}

// filterFromPred canonicalizes one parsed predicate into a closed-range
// plan.Filter, aligning decimal literals to the column's fixed-point scale.
func filterFromPred(c *plan.Catalog, table string, p Pred) (plan.Filter, error) {
	lo, err := alignScale(c, table, p.Col.Name, p.Lo, p.LoScale)
	if err != nil {
		return plan.Filter{}, err
	}
	hi, err := alignScale(c, table, p.Col.Name, p.Hi, p.HiScale)
	if err != nil {
		return plan.Filter{}, err
	}
	f := plan.Filter{Col: p.Col.Name}
	switch p.Op {
	case "=":
		f.Lo, f.Hi = lo, lo
	case "<":
		f.Lo, f.Hi = plan.NoLo, lo-1
	case "<=":
		f.Lo, f.Hi = plan.NoLo, lo
	case ">":
		f.Lo, f.Hi = lo+1, plan.NoHi
	case ">=":
		f.Lo, f.Hi = lo, plan.NoHi
	case "between":
		f.Lo, f.Hi = lo, hi
	default:
		return plan.Filter{}, fmt.Errorf("sql: unsupported predicate %q", p.Op)
	}
	return f, nil
}

// bindInsert shapes a parsed INSERT into schema-order rows with every
// literal aligned to its column's fixed-point scale. With an explicit
// column list the values are re-ordered; every table column must be
// covered (the engine has no NULLs).
func bindInsert(ins *InsertStmt, c *plan.Catalog) (*Binding, error) {
	t, err := c.Table(ins.Table)
	if err != nil {
		return nil, err
	}
	schema := t.ColumnNames()
	order := make([]int, len(schema)) // schema index -> value index
	if ins.Cols == nil {
		for i := range order {
			order[i] = i
		}
	} else {
		if len(ins.Cols) != len(schema) {
			return nil, fmt.Errorf("sql: insert into %s lists %d columns, table has %d (all columns are required)",
				ins.Table, len(ins.Cols), len(schema))
		}
		pos := make(map[string]int, len(ins.Cols))
		for vi, name := range ins.Cols {
			if _, dup := pos[name]; dup {
				return nil, fmt.Errorf("sql: insert into %s names column %s twice", ins.Table, name)
			}
			pos[name] = vi
		}
		for si, name := range schema {
			vi, ok := pos[name]
			if !ok {
				return nil, fmt.Errorf("sql: insert into %s does not cover column %s", ins.Table, name)
			}
			order[si] = vi
		}
	}
	// Per-column scales are constant across the statement: resolve them
	// once, not per literal (INSERTs compile on every execution).
	scales := make([]int64, len(schema))
	for si, name := range schema {
		if scales[si], err = t.ColumnScale(name); err != nil {
			return nil, err
		}
	}
	spec := &InsertSpec{Table: ins.Table, Rows: make([][]int64, 0, len(ins.Rows))}
	for r, row := range ins.Rows {
		if len(row) != len(schema) {
			return nil, fmt.Errorf("sql: insert into %s: row %d has %d values, table has %d columns",
				ins.Table, r+1, len(row), len(schema))
		}
		out := make([]int64, len(schema))
		for si, name := range schema {
			lit := row[order[si]]
			v, ok := alignToScale(scales[si], lit.V, lit.Scale)
			if !ok {
				return nil, fmt.Errorf("sql: literal has more fractional digits than column %s.%s (scale %d)",
					ins.Table, name, scales[si])
			}
			out[si] = v
		}
		spec.Rows = append(spec.Rows, out)
	}
	return &Binding{Insert: spec}, nil
}

// bindDelete lowers the (optional) WHERE conjunction into range filters.
func bindDelete(del *DeleteStmt, c *plan.Catalog) (*Binding, error) {
	if _, err := c.Table(del.Table); err != nil {
		return nil, err
	}
	spec := &DeleteSpec{Table: del.Table}
	for _, p := range del.Preds {
		if p.Col.Table != "" && p.Col.Table != del.Table {
			return nil, fmt.Errorf("sql: delete from %s cannot filter on %q", del.Table, p.Col.Table)
		}
		f, err := filterFromPred(c, del.Table, p)
		if err != nil {
			return nil, err
		}
		spec.Filters = append(spec.Filters, f)
	}
	return &Binding{Delete: spec}, nil
}

// bindCreate validates the column types via the store's shared type
// mapping. Supported: int (scale 1) and decimalN (N fractional digits,
// scale 10^N). Dictionary and date columns enter the catalog through the
// CSV loader, which owns their encodings.
func bindCreate(cr *CreateStmt, c *plan.Catalog) (*Binding, error) {
	spec := &CreateSpec{Table: cr.Table}
	for _, col := range cr.Cols {
		scale, err := store.ParseTypeScale(col.Type)
		if err != nil {
			return nil, fmt.Errorf("sql: column %s: %w", col.Name, err)
		}
		spec.Defs = append(spec.Defs, store.ColumnDef{Name: col.Name, Scale: scale, Width: bat.Width32})
	}
	return &Binding{Create: spec}, nil
}

// alignScale converts a literal parsed at litScale (10^fractional digits)
// into the column's storage scale. A literal with more fractional digits
// than the column stores is rejected.
func alignScale(c *plan.Catalog, table, col string, v, litScale int64) (int64, error) {
	t, err := c.Table(table)
	if err != nil {
		return 0, err
	}
	colScale, err := t.ColumnScale(col)
	if err != nil {
		return 0, err
	}
	out, ok := alignToScale(colScale, v, litScale)
	if !ok {
		return 0, fmt.Errorf("sql: literal has more fractional digits than column %s.%s (scale %d)", table, col, colScale)
	}
	return out, nil
}

// alignToScale is the scale arithmetic behind alignScale, for callers that
// already resolved the column scale. ok is false when the literal carries
// more fractional digits than the column stores.
func alignToScale(colScale, v, litScale int64) (int64, bool) {
	if litScale <= 1 {
		litScale = 1
	}
	if litScale > colScale {
		return 0, false
	}
	return v * (colScale / litScale), true
}

// bindArith lowers an AST expression into the plan expression model.
// Multiplication of two decimal literals/columns is fixed-point: the scale
// divisor is taken from the literal's own fractional digits (integer
// operands multiply at scale 1).
func bindArith(e *ArithE, onDim func(QualCol) (bool, error)) (plan.Expr, error) {
	switch e.Op {
	case "col":
		dim, err := onDim(e.Col)
		if err != nil {
			return nil, err
		}
		if dim {
			return plan.DimCol(e.Col.Name), nil
		}
		return plan.Col(e.Col.Name), nil
	case "lit":
		return plan.Const(e.Lit), nil
	case "+", "-", "*":
		l, err := bindArith(e.L, onDim)
		if err != nil {
			return nil, err
		}
		r, err := bindArith(e.R, onDim)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "+":
			return plan.Add(l, r), nil
		case "-":
			return plan.Sub(l, r), nil
		default:
			scale := int64(1)
			if e.L.Op == "lit" && e.L.Scale > 1 {
				scale = e.L.Scale
			}
			if e.R.Op == "lit" && e.R.Scale > 1 {
				scale = e.R.Scale
			}
			return plan.MulScaled(l, r, scale), nil
		}
	default:
		return nil, fmt.Errorf("sql: unknown expression op %q", e.Op)
	}
}

// Compile parses and binds a statement into an executable Binding — the
// reusable front half of Run. A Binding is immutable once compiled:
// executing it never mutates it, so compiled bindings may be cached (the
// server's plan cache stores them keyed on Normalize'd text) and executed
// concurrently.
func Compile(c *plan.Catalog, src string) (*Binding, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Bind(stmt, c)
}

// Exec runs a compiled binding with a background context; see ExecCtx.
func Exec(c *plan.Catalog, b *Binding, opts plan.ExecOpts, classic bool) (*plan.Result, error) {
	return ExecCtx(context.Background(), c, b, opts, classic)
}

// ExecCtx runs a compiled binding under ctx. bwdecompose and DML
// statements mutate the store and return a Result whose Plan lines carry
// the outcome message and whose Meter carries the simulated write cost
// (including any implicit compaction); EXPLAIN returns a Result with
// only the plan listing. Classic controls which executor runs the query
// (the A&R executor by default, matching Run). Cancellation is cooperative
// — the executors poll ctx between pipeline stages.
//
// Front-ends should not call this directly: internal/engine wraps it with
// session routing, admission control and plan caching.
func ExecCtx(ctx context.Context, c *plan.Catalog, b *Binding, opts plan.ExecOpts, classic bool) (*plan.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch {
	case b.Create != nil:
		if _, err := c.CreateTable(b.Create.Table, b.Create.Defs); err != nil {
			return nil, err
		}
		return &plan.Result{Plan: []string{fmt.Sprintf("created table %s (%d columns)", b.Create.Table, len(b.Create.Defs))}}, nil
	case b.Insert != nil:
		m := device.NewMeter(c.System())
		n, err := c.InsertRows(m, b.Insert.Table, b.Insert.Rows)
		if err != nil {
			return nil, err
		}
		return &plan.Result{Meter: m, Plan: []string{fmt.Sprintf("inserted %d rows into %s", n, b.Insert.Table)}}, nil
	case b.Delete != nil:
		m := device.NewMeter(c.System())
		n, err := c.DeleteRows(m, b.Delete.Table, b.Delete.Filters)
		if err != nil {
			return nil, err
		}
		return &plan.Result{Meter: m, Plan: []string{fmt.Sprintf("deleted %d rows from %s", n, b.Delete.Table)}}, nil
	}
	if len(b.Decompose) > 0 {
		// Metered: a decompose over a table with delta rows or deletions
		// compacts it first, and that merge's bus traffic must reach the
		// caller's totals like any other write cost.
		m := device.NewMeter(c.System())
		for _, d := range b.Decompose {
			if _, err := c.DecomposeMetered(m, d.Table, d.Col, d.Bits); err != nil {
				return nil, err
			}
		}
		return &plan.Result{Meter: m, Plan: []string{"decomposed"}}, nil
	}
	var res *plan.Result
	var err error
	if classic {
		res, err = c.ExecClassicCtx(ctx, b.Query, opts)
	} else {
		res, err = c.ExecARCtx(ctx, b.Query, opts)
	}
	if err != nil {
		return nil, err
	}
	if b.Explain {
		return &plan.Result{Plan: res.Plan, Meter: res.Meter}, nil
	}
	return res, nil
}

// Run parses, binds and executes a statement under the A&R executor. It is
// a convenience for tests and one-off programs; front-ends embed
// internal/engine instead.
func Run(c *plan.Catalog, src string, opts plan.ExecOpts) (*plan.Result, error) {
	b, err := Compile(c, src)
	if err != nil {
		return nil, err
	}
	return Exec(c, b, opts, false)
}

// Normalize canonicalizes statement text for plan-cache keying: tokens are
// re-serialized with single spaces and identifiers are lower-cased (the
// parser lower-cases names anyway), so queries differing only in whitespace
// or keyword case share one cache entry. Unlexable text normalizes to
// itself, unchanged, and will miss the cache — the parser reports the
// error. (It must not be trimmed here: trimming can turn unlexable text
// into lexable text, which would break Normalize's idempotence and with it
// the guarantee that a cache key re-normalizes to itself.)
func Normalize(src string) string {
	toks, err := tokenize(src)
	if err != nil {
		return src
	}
	var sb strings.Builder
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		if t.kind == tokIdent {
			sb.WriteString(strings.ToLower(t.text))
		} else if t.kind == tokString {
			sb.WriteByte('\'')
			sb.WriteString(t.text)
			sb.WriteByte('\'')
		} else {
			sb.WriteString(t.text)
		}
	}
	return sb.String()
}

// Format renders a result like a small SQL client.
func Format(res *plan.Result) string {
	if res == nil {
		return "ok\n"
	}
	if res.Rows == nil && len(res.Plan) > 0 {
		return strings.Join(res.Plan, "\n") + "\n"
	}
	return plan.FormatRows(res.Rows)
}
