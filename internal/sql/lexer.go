// Package sql implements a small SQL subset over the plan layer — enough
// to express every query the paper evaluates:
//
//	SELECT sum(l_extendedprice * l_discount) AS revenue
//	FROM lineitem
//	WHERE l_shipdate BETWEEN 731 AND 1095
//	  AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24
//
//	SELECT l_returnflag, l_linestatus, sum(l_quantity), count(*)
//	FROM lineitem WHERE l_shipdate <= 2436
//	GROUP BY l_returnflag, l_linestatus
//
//	SELECT count(lon) FROM trips
//	WHERE lon BETWEEN 268288 AND 270228 AND lat BETWEEN 5042220 AND 5044850
//
//	SELECT bwdecompose(lon, 24) FROM trips
//
// plus any number of foreign-key dimension joins (star schema:
// FROM fact JOIN d1 ON fact.fk1 = d1.pk JOIN d2 ON ...), fact-side OR
// groups over range predicates, HAVING, ORDER BY ... LIMIT, and EXPLAIN.
// Parse errors report the byte offset and nearby source text. Values are
// the engine's canonical scaled integers (decimal literals are scaled by
// their own fractional digits, e.g. 2.68288 -> 268288).
package sql

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . * + -
	tokOp     // = < > <= >= <>
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer scans SQL text into tokens. Keywords are case-insensitive and
// reported as upper-case identifiers.
type lexer struct {
	src string
	pos int
}

func (l *lexer) error(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isDigit(c):
		sawDot := false
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || (l.src[l.pos] == '.' && !sawDot && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]))) {
			if l.src[l.pos] == '.' {
				sawDot = true
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.error(start, "unterminated string literal")
		}
		l.pos++
		return token{kind: tokString, text: l.src[start+1 : l.pos-1], pos: start}, nil
	case c == '<' || c == '>':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case strings.IndexByte("(),.*+-", c) >= 0:
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	default:
		return token{}, l.error(start, "unexpected character %q", c)
	}
}

func isSpace(c byte) bool      { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

// tokenize scans the whole input.
func tokenize(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
