package sql

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/plan"
)

// TestPartitionedDDLLifecycle drives the SQL surface of partitioned
// tables: CREATE ... PARTITION BY, INSERT routed through the wrapper,
// bwdecompose fan-out, and scatter-gather SELECTs in both modes, checked
// against an unpartitioned twin loaded with the same rows.
func TestPartitionedDDLLifecycle(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	res := run(t, c, "create table orders (qty int, price decimal2) partition by hash(qty) partitions 3", false)
	if len(res.Plan) != 1 || !strings.Contains(res.Plan[0], "partition by hash(qty) partitions 3") {
		t.Fatalf("create result %v", res.Plan)
	}
	run(t, c, "create table flat (qty int, price decimal2)", false)

	insert := "insert into %s values (5, 1.50), (10, 2.25), (20, 99.99), (7, 3.00), (10, 0.75)"
	for _, tbl := range []string{"orders", "flat"} {
		run(t, c, strings.Replace(insert, "%s", tbl, 1), false)
		run(t, c, "select bwdecompose(qty, 8), bwdecompose(price, 10) from "+tbl, false)
	}

	queries := []string{
		"select count(*), sum(price) from %s where qty >= 7",
		"select qty, count(*) from %s where price <= 50.00 group by qty order by qty",
		"select min(price), max(price), avg(qty) from %s where qty between 5 and 20",
	}
	for _, qt := range queries {
		for _, classic := range []bool{false, true} {
			part := run(t, c, strings.Replace(qt, "%s", "orders", 1), classic)
			flat := run(t, c, strings.Replace(qt, "%s", "flat", 1), classic)
			if !plan.EqualResults(part.Rows, flat.Rows) {
				t.Fatalf("%s (classic=%v): partitioned %v != flat %v", qt, classic, part.Rows, flat.Rows)
			}
		}
	}

	// DELETE fans out; both tables must drop the same rows.
	for _, tbl := range []string{"orders", "flat"} {
		res := run(t, c, "delete from "+tbl+" where qty = 10", false)
		if len(res.Plan) != 1 || !strings.Contains(res.Plan[0], "deleted 2 rows") {
			t.Fatalf("%s delete result %v", tbl, res.Plan)
		}
	}
	if got := count(t, c, "select count(*) from orders where qty >= 1", false); got != 3 {
		t.Fatalf("count after delete = %d, want 3", got)
	}

	// Merging the wrapper compacts every partition.
	if _, err := c.MergeTable(nil, "orders", false); err != nil {
		t.Fatal(err)
	}
	p, ok := c.Partitioned("orders")
	if !ok {
		t.Fatal("orders is not registered as partitioned")
	}
	for i, pt := range p.Parts {
		if s := pt.Snapshot(); s.DeltaLen() != 0 || s.DeletedCount() != 0 {
			t.Fatalf("partition %d not compacted: delta=%d deleted=%d", i, s.DeltaLen(), s.DeletedCount())
		}
	}
	if got := count(t, c, "select count(*) from orders where qty >= 1", true); got != 3 {
		t.Fatalf("count after merge = %d, want 3", got)
	}
}

// TestPartitionByErrors pins the positioned parse/bind errors of the
// PARTITION BY clause, and the semantic rejections around partitioned
// tables (no dimension-side use).
func TestPartitionByErrors(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	cases := []struct {
		src  string
		want string
	}{
		{"create table t (a int) partition by foo(a) partitions 2", "unknown partition kind"},
		{"create table t (a int) partition by hash(b) partitions 2", "partition column b is not declared"},
		{"create table t (a int) partition by hash(a) partitions 0", "PARTITIONS takes a positive integer"},
		{"create table t (a int) partition by hash(a) partitions 2.5", "PARTITIONS takes a positive integer"},
		{"create table t (a int) partition by hash(a)", "expected PARTITIONS"},
		{"create table t (a int) partition hash(a) partitions 2", "expected BY"},
	}
	for _, tc := range cases {
		_, err := Compile(c, tc.src)
		if err == nil {
			t.Fatalf("%s: accepted", tc.src)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.src, err, tc.want)
		}
		// Parse errors must point at the offending token.
		if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("%s: error %q carries no position", tc.src, err)
		}
	}

	// Partition counts beyond the shard cap are a bind error (the literal
	// itself is a valid integer, so the parser accepts it).
	if _, err := Compile(c, "create table t (a int) partition by hash(a) partitions 100000"); err == nil {
		t.Fatal("oversized partition count accepted")
	}

	// A partitioned table cannot serve as a join dimension: there is no
	// dense primary key across partitions to index.
	run(t, c, "create table pdim (id int, pay int) partition by hash(id) partitions 2", false)
	run(t, c, "create table fact (fk int, v int)", false)
	run(t, c, "insert into fact values (1, 10), (2, 20)", false)
	run(t, c, "insert into pdim values (1, 100), (2, 200)", false)
	b, err := Compile(c, "select count(*) from fact join pdim on fact.fk = pdim.id where fact.v >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, b, plan.ExecOpts{}, true); err == nil || !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("join over a partitioned dimension: err %v, want a partitioned-table rejection", err)
	}

	// Duplicate creation through either path is rejected.
	if _, err := Compile(c, "create table pdim (id int)"); err == nil {
		// Creation errors surface at exec time (the binder does not check
		// existence so EXPLAIN works on uncreated names); run it.
		b, _ := Compile(c, "create table pdim (id int)")
		if _, err := Exec(c, b, plan.ExecOpts{}, false); err == nil {
			t.Fatal("duplicate create over a partitioned table accepted")
		}
	}
}
