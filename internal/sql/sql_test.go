package sql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/plan"
)

func testCatalog(t *testing.T) *plan.Catalog {
	t.Helper()
	c := plan.NewCatalog(device.PaperSystem())
	rng := rand.New(rand.NewSource(3))
	n := 10000

	li := plan.NewTable("lineitem")
	cols := map[string][]int64{}
	for _, name := range []string{"l_shipdate", "l_discount", "l_quantity", "l_extendedprice", "l_partkey", "l_returnflag"} {
		vals := make([]int64, n)
		for i := range vals {
			switch name {
			case "l_discount":
				vals[i] = int64(rng.Intn(10)) + 1
			case "l_quantity":
				vals[i] = int64(rng.Intn(50)) + 1
			case "l_partkey":
				vals[i] = int64(rng.Intn(100)) + 1
			case "l_returnflag":
				vals[i] = int64(rng.Intn(3))
			default:
				vals[i] = int64(rng.Intn(2526))
			}
		}
		cols[name] = vals
		if err := li.AddColumn(name, bat.NewDense(vals, bat.Width32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddTable(li); err != nil {
		t.Fatal(err)
	}

	part := plan.NewTable("part")
	pk := make([]int64, 100)
	ptype := make([]int64, 100)
	for i := range pk {
		pk[i] = int64(i) + 1
		ptype[i] = int64(i % 10)
	}
	if err := part.AddColumn("p_partkey", bat.NewDense(pk, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := part.AddColumn("p_type", bat.NewDense(ptype, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(part); err != nil {
		t.Fatal(err)
	}
	if err := c.BuildFKIndex("part", "p_partkey"); err != nil {
		t.Fatal(err)
	}
	return c
}

func mustRun(t *testing.T, c *plan.Catalog, src string) *plan.Result {
	t.Helper()
	res, err := Run(c, src, plan.ExecOpts{})
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return res
}

func TestBWDecomposeStatement(t *testing.T) {
	c := testCatalog(t)
	res := mustRun(t, c, "select bwdecompose(l_shipdate, 24), bwdecompose(l_discount, 24) from lineitem")
	if res == nil || res.Rows != nil || len(res.Plan) != 1 || res.Plan[0] != "decomposed" {
		t.Fatalf("bwdecompose should return a rowless 'decomposed' result, got %+v", res)
	}
	if res.Meter == nil {
		t.Fatal("bwdecompose result carries no meter (implicit compaction would go uncharged)")
	}
	if _, err := c.Decomposition("lineitem", "l_shipdate"); err != nil {
		t.Fatalf("decomposition not applied: %v", err)
	}
}

func TestSimpleAggregate(t *testing.T) {
	c := testCatalog(t)
	mustRun(t, c, "select bwdecompose(l_shipdate, 8) from lineitem")
	res := mustRun(t, c, "select count(*) as n from lineitem where l_shipdate between 100 and 500")

	q := plan.Query{
		Table:   "lineitem",
		Filters: []plan.Filter{{Col: "l_shipdate", Lo: 100, Hi: 500}},
		Aggs:    []plan.AggSpec{{Name: "n", Func: plan.Count}},
	}
	want, err := c.ExecClassic(q, plan.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.EqualResults(res.Rows, want.Rows) {
		t.Fatalf("SQL result %v != engine result %v", res.Rows, want.Rows)
	}
	if want.Rows[0].Vals[0] == 0 {
		t.Fatal("count is zero; bad test data")
	}
}

func TestQ6Shape(t *testing.T) {
	c := testCatalog(t)
	for _, col := range []string{"l_shipdate", "l_discount", "l_quantity", "l_extendedprice"} {
		mustRun(t, c, "select bwdecompose("+col+", 32) from lineitem")
	}
	res := mustRun(t, c, `
		select sum(l_extendedprice * l_discount) as revenue
		from lineitem
		where l_shipdate between 731 and 1095
		  and l_discount between 5 and 7
		  and l_quantity < 24`)
	if len(res.Rows) != 1 || res.Rows[0].Vals[0] <= 0 {
		t.Fatalf("unexpected revenue result: %v", res.Rows)
	}
}

func TestGroupByWithKeysInSelect(t *testing.T) {
	c := testCatalog(t)
	for _, col := range []string{"l_shipdate", "l_returnflag", "l_quantity"} {
		mustRun(t, c, "select bwdecompose("+col+", 32) from lineitem")
	}
	res := mustRun(t, c, `
		select l_returnflag, sum(l_quantity) as q, count(*) as n, avg(l_quantity) as aq,
		       min(l_quantity) as lo, max(l_quantity) as hi
		from lineitem where l_shipdate <= 2000 group by l_returnflag`)
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 returnflag groups, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Vals[1] == 0 {
			t.Error("empty group emitted")
		}
	}
}

func TestJoinQuery(t *testing.T) {
	c := testCatalog(t)
	for _, col := range []string{"l_shipdate", "l_partkey", "l_extendedprice"} {
		mustRun(t, c, "select bwdecompose("+col+", 32) from lineitem")
	}
	mustRun(t, c, "select bwdecompose(part.p_type, 32) from part")
	res := mustRun(t, c, `
		select sum(l_extendedprice) as rev, count(*) as n
		from lineitem join part on lineitem.l_partkey = part.p_partkey
		where l_shipdate < 1000 and part.p_type between 2 and 4`)
	if len(res.Rows) != 1 || res.Rows[0].Vals[1] == 0 {
		t.Fatalf("join query found nothing: %v", res.Rows)
	}

	// Cross-check against the classic engine.
	q := plan.Query{
		Table:   "lineitem",
		Filters: []plan.Filter{{Col: "l_shipdate", Lo: plan.NoLo, Hi: 999}},
		Joins: []plan.JoinSpec{{FKCol: "l_partkey", Dim: "part", DimPK: "p_partkey",
			DimFilters: []plan.Filter{{Col: "p_type", Lo: 2, Hi: 4}}}},
		Aggs: []plan.AggSpec{
			{Name: "rev", Func: plan.Sum, Expr: plan.Col("l_extendedprice")},
			{Name: "n", Func: plan.Count},
		},
	}
	want, err := c.ExecClassic(q, plan.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.EqualResults(res.Rows, want.Rows) {
		t.Fatalf("SQL join %v != engine %v", res.Rows, want.Rows)
	}
}

func TestExplain(t *testing.T) {
	c := testCatalog(t)
	mustRun(t, c, "select bwdecompose(l_shipdate, 8) from lineitem")
	res := mustRun(t, c, "explain select count(*) from lineitem where l_shipdate < 100")
	text := Format(res)
	if !strings.Contains(text, "bwd.uselectapproximate(lineitem.l_shipdate)") {
		t.Errorf("explain output missing approximate select:\n%s", text)
	}
	if !strings.Contains(text, "bwd.uselectrefine(lineitem.l_shipdate)") {
		t.Errorf("explain output missing refine:\n%s", text)
	}
}

func TestDecimalLiteralScaling(t *testing.T) {
	stmt, err := Parse("select count(*) from trips where lon between 2.68288 and 2.70228")
	if err != nil {
		t.Fatal(err)
	}
	p := stmt.Select.Where[0].Preds[0]
	if p.Lo != 268288 || p.Hi != 270228 {
		t.Errorf("decimal literals scaled to %d, %d; want 268288, 270228", p.Lo, p.Hi)
	}
}

func TestOperatorCanonicalization(t *testing.T) {
	c := testCatalog(t)
	mustRun(t, c, "select bwdecompose(l_quantity, 32) from lineitem")
	lt := mustRun(t, c, "select count(*) as n from lineitem where l_quantity < 24")
	le := mustRun(t, c, "select count(*) as n from lineitem where l_quantity <= 23")
	if !plan.EqualResults(lt.Rows, le.Rows) {
		t.Error("v < 24 must equal v <= 23")
	}
	gt := mustRun(t, c, "select count(*) as n from lineitem where l_quantity > 24")
	ge := mustRun(t, c, "select count(*) as n from lineitem where l_quantity >= 25")
	if !plan.EqualResults(gt.Rows, ge.Rows) {
		t.Error("v > 24 must equal v >= 25")
	}
	eq := mustRun(t, c, "select count(*) as n from lineitem where l_quantity = 24")
	total := mustRun(t, c, "select count(*) as n from lineitem where l_quantity between 1 and 50")
	sum := lt.Rows[0].Vals[0] + gt.Rows[0].Vals[0] + eq.Rows[0].Vals[0]
	if sum != total.Rows[0].Vals[0] {
		t.Errorf("partition by <,=,> does not cover: %d != %d", sum, total.Rows[0].Vals[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select from lineitem",
		"select count(* from lineitem",
		"select sum(*) from lineitem",
		"select count(*) from lineitem where",
		"select count(*) from lineitem where l_shipdate ! 5",
		"select count(*) from lineitem where l_shipdate between 1",
		"select count(*) lineitem",
		"select count(*) from lineitem group l_returnflag",
		"select count(*) from lineitem trailing",
		"select count(*) from lineitem where l_shipdate < 'abc",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) did not fail", src)
		}
	}
}

func TestBindErrors(t *testing.T) {
	c := testCatalog(t)
	bad := []string{
		"select count(*) from nope",
		"select l_shipdate from lineitem",                                         // bare column without grouping
		"select count(*) from lineitem where bogus.l_shipdate < 5",                // unknown qualifier
		"select bwdecompose(l_shipdate, 99) from lineitem",                        // bits out of range
		"select bwdecompose(l_shipdate, 8), count(*) from lineitem",               // mixed bwdecompose
		"select count(*) from lineitem join part on part.p_type = part.p_partkey", // join not relating tables
		"select count(*) from lineitem group by part.p_type",
	}
	for _, src := range bad {
		stmt, err := Parse(src)
		if err != nil {
			continue // some are parse-level failures, fine
		}
		if _, err := Bind(stmt, c); err == nil {
			t.Errorf("Bind(%q) did not fail", src)
		}
	}
}

func TestRunUndedecomposedColumnFails(t *testing.T) {
	c := testCatalog(t)
	if _, err := Run(c, "select count(*) from lineitem where l_tax < 5", plan.ExecOpts{}); err == nil {
		t.Error("query over unknown column did not fail")
	}
	if _, err := Run(c, "select count(*) from lineitem where l_shipdate < 5", plan.ExecOpts{}); err == nil {
		t.Error("query over undecomposed column did not fail (A&R needs bwdecompose)")
	}
}

func TestFormatVariants(t *testing.T) {
	if Format(nil) != "ok\n" {
		t.Error("nil result should format as ok")
	}
	res := &plan.Result{Plan: []string{"step1", "step2"}}
	if !strings.Contains(Format(res), "step1") {
		t.Error("plan-only result should list steps")
	}
}

// TestSQLFuzzARMatchesClassic drives randomly generated SQL through the
// full stack (lex -> parse -> bind -> A&R execution) and cross-checks
// every query against the classic engine: the end-to-end version of
// DESIGN.md invariant 9.
func TestSQLFuzzARMatchesClassic(t *testing.T) {
	c := testCatalog(t)
	for _, col := range []string{"l_shipdate", "l_discount", "l_quantity", "l_extendedprice", "l_returnflag"} {
		mustRun(t, c, "select bwdecompose("+col+", 9) from lineitem")
	}
	rng := rand.New(rand.NewSource(99))
	filterCols := []string{"l_shipdate", "l_discount", "l_quantity"}
	maxVal := map[string]int{"l_shipdate": 2600, "l_discount": 11, "l_quantity": 51}
	aggs := []string{
		"count(*) as n",
		"sum(l_extendedprice) as s",
		"min(l_quantity) as lo",
		"max(l_quantity) as hi",
		"avg(l_discount) as d",
		"sum(l_extendedprice * l_discount) as rev",
		"sum(l_extendedprice - l_quantity) as diff",
	}
	for trial := 0; trial < 40; trial++ {
		sqlText := "select " + aggs[trial%len(aggs)] + ", count(*) as cnt from lineitem"
		nf := rng.Intn(3)
		for f := 0; f <= nf && f < len(filterCols); f++ {
			col := filterCols[f]
			lo := rng.Intn(maxVal[col])
			hi := lo + rng.Intn(maxVal[col]-lo)
			kw := " and "
			if f == 0 {
				kw = " where "
			}
			sqlText += fmt.Sprintf("%s%s between %d and %d", kw, col, lo, hi)
		}
		grouped := rng.Intn(2) == 0
		if grouped {
			sqlText += " group by l_returnflag"
		}

		stmt, err := Parse(sqlText)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, sqlText, err)
		}
		binding, err := Bind(stmt, c)
		if err != nil {
			t.Fatalf("trial %d: Bind(%q): %v", trial, sqlText, err)
		}
		arRes, err := c.ExecAR(binding.Query, plan.ExecOpts{})
		if err != nil {
			t.Fatalf("trial %d: ExecAR: %v", trial, err)
		}
		clRes, err := c.ExecClassic(binding.Query, plan.ExecOpts{})
		if err != nil {
			t.Fatalf("trial %d: ExecClassic: %v", trial, err)
		}
		if !plan.EqualResults(arRes.Rows, clRes.Rows) {
			t.Fatalf("trial %d: %q\nA&R: %sclassic: %s", trial, sqlText,
				plan.FormatRows(arRes.Rows), plan.FormatRows(clRes.Rows))
		}
	}
}
