package sql

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/plan"
)

// run executes src through the full front end under the given executor.
func run(t *testing.T, c *plan.Catalog, src string, classic bool) *plan.Result {
	t.Helper()
	b, err := Compile(c, src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	res, err := Exec(c, b, plan.ExecOpts{}, classic)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return res
}

func count(t *testing.T, c *plan.Catalog, src string, classic bool) int64 {
	t.Helper()
	res := run(t, c, src, classic)
	if len(res.Rows) != 1 || len(res.Rows[0].Vals) != 1 {
		t.Fatalf("%s: unexpected shape %v", src, res.Rows)
	}
	return res.Rows[0].Vals[0]
}

// TestDMLLifecycle drives the acceptance path: CREATE, INSERT, decompose,
// more inserts, DELETE, SELECT in both modes with and without a merge.
func TestDMLLifecycle(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	run(t, c, "create table orders (qty int, price decimal2)", false)

	// Rows land in the delta segment of the empty table.
	run(t, c, "insert into orders values (5, 1.50), (10, 2.25), (20, 99.99)", false)
	if got := count(t, c, "select count(*) from orders where qty >= 5", true); got != 3 {
		t.Fatalf("classic count after insert = %d, want 3", got)
	}

	// Decompose compacts the delta into a base segment first.
	run(t, c, "select bwdecompose(qty, 8), bwdecompose(price, 10) from orders", false)
	if got := count(t, c, "select count(*) from orders where qty >= 5", false); got != 3 {
		t.Fatalf("A&R count after decompose = %d, want 3", got)
	}

	// Fresh inserts are queryable in both modes without re-decomposition.
	run(t, c, "insert into orders (price, qty) values (3.00, 7)", false)
	for _, classic := range []bool{false, true} {
		if got := count(t, c, "select count(*) from orders where qty >= 5", classic); got != 4 {
			t.Fatalf("count (classic=%v) after delta insert = %d, want 4", classic, got)
		}
		if got := count(t, c, "select sum(qty) from orders where price <= 3.00", classic); got != 22 {
			t.Fatalf("sum (classic=%v) = %d, want 22 (5+10+7)", classic, got)
		}
	}

	// DELETE hits base and delta rows alike.
	res := run(t, c, "delete from orders where qty between 7 and 10", false)
	if len(res.Plan) != 1 || !strings.Contains(res.Plan[0], "deleted 2 rows") {
		t.Fatalf("delete result %v", res.Plan)
	}
	for _, classic := range []bool{false, true} {
		if got := count(t, c, "select count(*) from orders where qty >= 1", classic); got != 2 {
			t.Fatalf("count (classic=%v) after delete = %d, want 2", classic, got)
		}
	}

	// An explicit merge compacts everything; results are unchanged.
	if _, err := c.MergeTable(nil, "orders", false); err != nil {
		t.Fatal(err)
	}
	tbl, _ := c.Table("orders")
	if s := tbl.Snapshot(); s.DeltaLen() != 0 || s.DeletedCount() != 0 || s.BaseLen() != 2 {
		t.Fatalf("post-merge segment state: base=%d delta=%d deleted=%d", s.BaseLen(), s.DeltaLen(), s.DeletedCount())
	}
	for _, classic := range []bool{false, true} {
		if got := count(t, c, "select count(*) from orders where qty >= 1", classic); got != 2 {
			t.Fatalf("count (classic=%v) after merge = %d, want 2", classic, got)
		}
		if got := count(t, c, "select sum(price) from orders where qty >= 1", classic); got != 10149 {
			t.Fatalf("sum(price) (classic=%v) after merge = %d, want 10149", classic, got)
		}
	}
}

func TestInsertScaleAlignment(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	run(t, c, "create table p (v decimal2)", false)
	run(t, c, "insert into p values (1.5)", false) // 1.5 -> 150
	tbl, _ := c.Table("p")
	if got := tbl.Snapshot().DeltaValue(0, 0); got != 150 {
		t.Fatalf("scaled insert value = %d, want 150", got)
	}
	if _, err := Compile(c, "insert into p values (1.555)"); err == nil {
		t.Fatal("over-precise literal accepted")
	}
}

func TestInsertNegativeValues(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	run(t, c, "create table p (v int)", false)
	run(t, c, "insert into p values (-5), (3)", false)
	if got := count(t, c, "select count(*) from p where v <= -1", true); got != 1 {
		t.Fatalf("negative insert not found: count = %d", got)
	}
}

func TestDMLBindErrors(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	run(t, c, "create table p (a int, b int)", false)
	for _, src := range []string{
		"insert into nope values (1)",
		"insert into p values (1)",           // arity
		"insert into p (a) values (1)",       // missing column
		"insert into p (a, a) values (1, 2)", // duplicate column
		"delete from nope",
		"delete from p where other.x = 1",     // foreign qualifier
		"create table q (a blob)",             // unknown type
		"create table p (a int)",              // duplicate at exec time
		"explain insert into p values (1, 2)", // EXPLAIN is select-only
		"insert into p values (1, 2) garbage", // trailing input
	} {
		b, err := Compile(c, src)
		if err == nil {
			if _, err = Exec(c, b, plan.ExecOpts{}, false); err == nil {
				t.Errorf("%s: accepted", src)
			}
		}
	}
}

func TestDeleteWithoutWhereEmptiesTable(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	run(t, c, "create table p (v int)", false)
	run(t, c, "insert into p values (1), (2), (3)", false)
	res := run(t, c, "delete from p", false)
	if !strings.Contains(res.Plan[0], "deleted 3 rows") {
		t.Fatalf("delete result %v", res.Plan)
	}
	if got := count(t, c, "select count(*) from p where v >= 0", true); got != 0 {
		t.Fatalf("count after delete-all = %d, want 0", got)
	}
}

func TestNormalizeDML(t *testing.T) {
	src := "INSERT  INTO  p VALUES ( 1 ,  2.5 )"
	want := "insert into p values ( 1 , 2.5 )"
	if got := Normalize(src); got != want {
		t.Fatalf("Normalize(%q) = %q, want %q", src, got, want)
	}
}
