package sql

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/plan"
)

// fuzzCatalog is a tiny fixed catalog for binding fuzzed statements: one
// fact table with scaled and unscaled columns and one joinable dimension,
// so qualified names, joins and decimal-literal alignment are reachable.
var fuzzCatalog = sync.OnceValue(func() *plan.Catalog {
	c := plan.NewCatalog(device.PaperSystem())
	fact := plan.NewTable("t")
	n := 16
	mk := func() *bat.BAT {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i)
		}
		return bat.NewDense(vals, bat.Width32)
	}
	if err := fact.AddColumn("a", mk()); err != nil {
		panic(err)
	}
	if err := fact.AddColumn("fk", mk()); err != nil {
		panic(err)
	}
	if err := fact.AddColumnScaled("price", mk(), 100); err != nil {
		panic(err)
	}
	if err := c.AddTable(fact); err != nil {
		panic(err)
	}
	dim := plan.NewTable("d")
	if err := dim.AddColumn("id", mk()); err != nil {
		panic(err)
	}
	if err := dim.AddColumn("v", mk()); err != nil {
		panic(err)
	}
	if err := c.AddTable(dim); err != nil {
		panic(err)
	}
	return c
})

// FuzzParseNormalize guards the SQL front end and the plan-cache keying
// contract: Parse must never panic on arbitrary input, Normalize must be
// idempotent (a cache key re-normalizes to itself), and any statement that
// compiles must compile from its normalized text to an equivalent binding
// — otherwise a cache hit on normalized text could execute a different
// plan than compiling the original would have.
func FuzzParseNormalize(f *testing.F) {
	seeds := []string{
		"select count(*) from t",
		"select count(a) as n, sum(price) from t where price between 1.00 and 60.00",
		"SELECT  Sum(a)  FROM t WHERE a >= 3 AND a < 12 GROUP BY a",
		"select bwdecompose(a, 24), bwdecompose(price, 12) from t",
		"explain select min(a), max(a) from t where a = 7",
		"select sum(price * (1 - a)) from t join d on t.fk = d.id where d.v > 2",
		"select avg(a + 2) from t group by a, fk",
		"select sum(case when a between 1 and 3 then price else 0 end) from t",
		"select count(*) from t where a between -5 and 'x'",
		"select !! from",
		"select count(*) from t where price between 1.000000 and 2",
		"  select\tcount ( * )\nfrom t  ",
		"'unterminated",
		"select 1e9 from t",
		"$1 $2 $9",
		"insert into t values (1, 2, 3.50), (-4, 5, 6)",
		"insert into t (price, a, fk) values (1.25, 2, 3)",
		"delete from t where a between 3 and 7 and price >= 1.50",
		"delete from t",
		"create table fresh (id int, amount decimal2)",
		"insert into t values ()",
		"create table broken (x blob)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := fuzzCatalog()
	f.Fuzz(func(t *testing.T, src string) {
		// Normalize is total and idempotent: normalizing a cache key must
		// reproduce it byte for byte.
		n1 := Normalize(src)
		if n2 := Normalize(n1); n2 != n1 {
			t.Fatalf("Normalize not idempotent:\n src %q\n n1  %q\n n2  %q", src, n1, n2)
		}

		// Parse must not panic, whatever the input.
		stmt, err := Parse(src)
		if err != nil {
			return
		}

		// If the statement binds, its normalized text must bind to an
		// equivalent (deep-equal) binding — the plan-cache keying contract.
		b1, err := Bind(stmt, cat)
		if err != nil {
			return
		}
		b2, err := Compile(cat, n1)
		if err != nil {
			t.Fatalf("source compiles but normalized text does not:\n src %q\n norm %q\n err %v", src, n1, err)
		}
		if !reflect.DeepEqual(b1, b2) {
			t.Fatalf("normalized text compiles to a different binding:\n src %q\n norm %q\n b1 %#v\n b2 %#v", src, n1, b1, b2)
		}
	})
}
