package csvload

import "testing"

func TestParseSchema(t *testing.T) {
	s, err := ParseSchema("items", "id:int,price:decimal2,kind:dict,shipped:date")
	if err != nil {
		t.Fatal(err)
	}
	if s.Table != "items" || len(s.Cols) != 4 {
		t.Fatalf("schema %+v", s)
	}
	want := []ColumnSpec{
		{Name: "id", Kind: Int},
		{Name: "price", Kind: Decimal, Scale: 100},
		{Name: "kind", Kind: Dict},
		{Name: "shipped", Kind: Date},
	}
	for i, w := range want {
		if s.Cols[i] != w {
			t.Errorf("col %d = %+v, want %+v", i, s.Cols[i], w)
		}
	}
	for _, bad := range []string{"", "id", "id:", ":int", "id:blob", "p:decimal11", "p:decimalx"} {
		if _, err := ParseSchema("t", bad); err == nil {
			t.Errorf("ParseSchema(%q) accepted", bad)
		}
	}
}
