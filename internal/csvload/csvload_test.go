package csvload

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/sql"
)

const sample = `id,price,kind,shipped
1,12.50,PROMO TIN,1992-01-01
2,0.99,STANDARD BRASS,1992-01-03
3,100.00,PROMO STEEL,1993-06-15
4,55.25,ECONOMY TIN,1992-01-01
`

func load(t *testing.T) (*plan.Catalog, *Result) {
	t.Helper()
	c := plan.NewCatalog(device.PaperSystem())
	res, err := Load(c, strings.NewReader(sample), Schema{
		Table: "items",
		Cols: []ColumnSpec{
			{Name: "id", Kind: Int},
			{Name: "price", Kind: Decimal, Scale: 100},
			{Name: "kind", Kind: Dict},
			{Name: "shipped", Kind: Date},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

func TestLoadTypes(t *testing.T) {
	c, res := load(t)
	if res.Rows != 4 {
		t.Fatalf("Rows = %d, want 4", res.Rows)
	}
	tbl, err := c.Table("items")
	if err != nil {
		t.Fatal(err)
	}
	price, _ := tbl.Column("price")
	if price.Tail(0) != 1250 || price.Tail(1) != 99 {
		t.Errorf("decimal parsing: %d, %d", price.Tail(0), price.Tail(1))
	}
	if s, _ := tbl.ColumnScale("price"); s != 100 {
		t.Errorf("price scale = %d, want 100", s)
	}
	shipped, _ := tbl.Column("shipped")
	if shipped.Tail(0) != 0 || shipped.Tail(1) != 2 {
		t.Errorf("date parsing: %d, %d (days since epoch)", shipped.Tail(0), shipped.Tail(1))
	}
	if shipped.Tail(2) <= 365 {
		t.Errorf("1993 date should be beyond one year: %d", shipped.Tail(2))
	}
}

func TestDictionaryOrderedAndPrefix(t *testing.T) {
	c, res := load(t)
	dict := res.Dicts["kind"]
	if len(dict) != 4 {
		t.Fatalf("dictionary size %d, want 4", len(dict))
	}
	for i := 1; i < len(dict); i++ {
		if dict[i-1] >= dict[i] {
			t.Fatal("dictionary not sorted")
		}
	}
	lo, hi, ok := PrefixRange(dict, "PROMO")
	if !ok || hi-lo+1 != 2 {
		t.Fatalf("PROMO range [%d,%d] ok=%v, want 2 entries", lo, hi, ok)
	}
	if _, _, ok := PrefixRange(dict, "ZZZ"); ok {
		t.Error("nonexistent prefix matched")
	}

	// The loaded dictionary column is queryable through the full stack.
	tbl, _ := c.Table("items")
	kind, _ := tbl.Column("kind")
	count := 0
	for i := 0; i < kind.Len(); i++ {
		if kind.Tail(i) >= lo && kind.Tail(i) <= hi {
			count++
		}
	}
	if count != 2 {
		t.Errorf("PROMO rows = %d, want 2", count)
	}
}

func TestLoadedTableQueryable(t *testing.T) {
	c, _ := load(t)
	if _, err := sql.Run(c, "select bwdecompose(price, 24) from items", plan.ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	res, err := sql.Run(c, "select count(*) as n, sum(price) as total from items where price between 1.00 and 60.00", plan.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Vals[0] != 2 { // 12.50 and 55.25
		t.Errorf("count = %d, want 2", res.Rows[0].Vals[0])
	}
	if res.Rows[0].Vals[1] != 1250+5525 {
		t.Errorf("sum = %d, want %d", res.Rows[0].Vals[1], 1250+5525)
	}
}

func TestLoadErrors(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	if _, err := Load(c, strings.NewReader(sample), Schema{Table: "x"}); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := Load(c, strings.NewReader(sample), Schema{
		Table: "x", Cols: []ColumnSpec{{Name: "missing", Kind: Int}},
	}); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := Load(c, strings.NewReader("id\nabc\n"), Schema{
		Table: "x", Cols: []ColumnSpec{{Name: "id", Kind: Int}},
	}); err == nil {
		t.Error("bad integer accepted")
	}
	if _, err := Load(c, strings.NewReader("d\n2020-13-45\n"), Schema{
		Table: "x", Cols: []ColumnSpec{{Name: "d", Kind: Date}},
	}); err == nil {
		t.Error("bad date accepted")
	}
}

func TestWidthSelection(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	res, err := Load(c, strings.NewReader("small,big\n1,5000000000\n2,6000000000\n"), Schema{
		Table: "w",
		Cols:  []ColumnSpec{{Name: "small", Kind: Int}, {Name: "big", Kind: Int}},
	})
	if err != nil {
		t.Fatal(err)
	}
	small, _ := res.Table.Column("small")
	big, _ := res.Table.Column("big")
	if small.Width() != 1 {
		t.Errorf("small width = %d, want 1", small.Width())
	}
	if big.Width() != 8 {
		t.Errorf("big width = %d, want 8", big.Width())
	}
}
