// Package csvload loads CSV files into catalog tables, complementing the
// cmd/tpchgen and cmd/spatialgen exporters: external data can be brought
// into the engine, decomposed with bwdecompose, and queried.
//
// Columns are typed by a Schema: plain integers, fixed-point decimals
// (stored as scaled integers at the declared scale), dates (days since an
// epoch) or dictionary-encoded strings (ordered codes, so prefix
// predicates can be rewritten into ranges like the paper does for Q14).
package csvload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/bat"
	"repro/internal/fixed"
	"repro/internal/plan"
	"repro/internal/store"
)

// Kind is a column type.
type Kind int

// Column kinds.
const (
	Int Kind = iota
	Decimal
	Date
	Dict
)

// ColumnSpec types one CSV column.
type ColumnSpec struct {
	Name  string
	Kind  Kind
	Scale int64 // Decimal: fixed-point scale (e.g. 100, 100000)
}

// Schema types a CSV file. Columns not listed are ignored.
type Schema struct {
	Table string
	Cols  []ColumnSpec
	// Epoch anchors Date columns (days since Epoch); defaults to
	// 1992-01-01, the TPC-H epoch.
	Epoch time.Time
}

// Result describes a completed load.
type Result struct {
	Table *plan.Table
	Rows  int
	// Dicts maps dictionary column names to their ordered value lists
	// (code -> string), for prefix-to-range rewrites.
	Dicts map[string][]string
}

// Load reads CSV data (with a header row) according to the schema and
// registers the table in the catalog.
func Load(c *plan.Catalog, r io.Reader, schema Schema) (*Result, error) {
	if len(schema.Cols) == 0 {
		return nil, fmt.Errorf("csvload: empty schema")
	}
	epoch := schema.Epoch
	if epoch.IsZero() {
		epoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvload: reading header: %w", err)
	}
	colIdx := make([]int, len(schema.Cols))
	for i, spec := range schema.Cols {
		colIdx[i] = -1
		for j, h := range header {
			if h == spec.Name {
				colIdx[i] = j
				break
			}
		}
		if colIdx[i] < 0 {
			return nil, fmt.Errorf("csvload: column %q not in header %v", spec.Name, header)
		}
	}

	vals := make([][]int64, len(schema.Cols))
	// Dictionary columns collect raw strings first; codes are assigned
	// after sorting so that the dictionary is ordered.
	raw := make([][]string, len(schema.Cols))
	rows := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvload: row %d: %w", rows+2, err)
		}
		for i, spec := range schema.Cols {
			field := rec[colIdx[i]]
			switch spec.Kind {
			case Int:
				v, err := fixed.Parse(field, 1)
				if err != nil {
					return nil, fmt.Errorf("csvload: %s row %d: %w", spec.Name, rows+2, err)
				}
				vals[i] = append(vals[i], v)
			case Decimal:
				v, err := fixed.Parse(field, spec.Scale)
				if err != nil {
					return nil, fmt.Errorf("csvload: %s row %d: %w", spec.Name, rows+2, err)
				}
				vals[i] = append(vals[i], v)
			case Date:
				t, err := time.Parse("2006-01-02", field)
				if err != nil {
					return nil, fmt.Errorf("csvload: %s row %d: %w", spec.Name, rows+2, err)
				}
				vals[i] = append(vals[i], int64(t.Sub(epoch).Hours()/24))
			case Dict:
				raw[i] = append(raw[i], field)
			default:
				return nil, fmt.Errorf("csvload: unknown kind %d", spec.Kind)
			}
		}
		rows++
	}

	res := &Result{Rows: rows, Dicts: map[string][]string{}}
	tbl := plan.NewTable(schema.Table)
	for i, spec := range schema.Cols {
		if spec.Kind == Dict {
			dict, codes := encodeDict(raw[i])
			res.Dicts[spec.Name] = dict
			vals[i] = codes
		}
		scale := int64(1)
		if spec.Kind == Decimal {
			scale = spec.Scale
		}
		if err := tbl.AddColumnScaled(spec.Name, bat.NewDense(vals[i], widthFor(spec, vals[i])), scale); err != nil {
			return nil, err
		}
	}
	if err := c.AddTable(tbl); err != nil {
		return nil, err
	}
	res.Table = tbl
	return res, nil
}

// ParseSchema parses the compact schema syntax of the shell's \load
// command into a Schema: comma-separated "name:type" pairs where type is
// int, date, dict, or decimalN (N fractional digits, e.g. decimal2 for
// money, decimal5 for GPS coordinates):
//
//	id:int,price:decimal2,name:dict,shipped:date
func ParseSchema(table, spec string) (Schema, error) {
	schema := Schema{Table: table}
	if strings.TrimSpace(spec) == "" {
		return schema, fmt.Errorf("csvload: empty schema spec")
	}
	for _, field := range strings.Split(spec, ",") {
		name, typ, ok := strings.Cut(strings.TrimSpace(field), ":")
		if !ok || name == "" || typ == "" {
			return schema, fmt.Errorf("csvload: malformed schema field %q (want name:type)", field)
		}
		col := ColumnSpec{Name: name}
		switch {
		case typ == "int":
			col.Kind = Int
		case typ == "date":
			col.Kind = Date
		case typ == "dict":
			col.Kind = Dict
		case strings.HasPrefix(typ, "decimal"):
			// Shares CREATE TABLE's type mapping so the two surfaces
			// cannot drift.
			scale, err := store.ParseTypeScale(typ)
			if err != nil {
				return schema, fmt.Errorf("csvload: %w", err)
			}
			col.Kind = Decimal
			col.Scale = scale
		default:
			return schema, fmt.Errorf("csvload: unknown column type %q (int, decimalN, date, dict)", typ)
		}
		schema.Cols = append(schema.Cols, col)
	}
	return schema, nil
}

// encodeDict builds an ordered dictionary over the strings and returns it
// with the per-row codes.
func encodeDict(raw []string) (dict []string, codes []int64) {
	seen := map[string]bool{}
	for _, s := range raw {
		if !seen[s] {
			seen[s] = true
			dict = append(dict, s)
		}
	}
	sort.Strings(dict)
	code := make(map[string]int64, len(dict))
	for i, s := range dict {
		code[s] = int64(i)
	}
	codes = make([]int64, len(raw))
	for i, s := range raw {
		codes[i] = code[s]
	}
	return dict, codes
}

// widthFor picks the physical width the cost model charges for a column.
func widthFor(spec ColumnSpec, vals []int64) int {
	if spec.Kind == Dict {
		return bat.Width8
	}
	var lo, hi int64
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	switch {
	case lo >= -128 && hi < 128:
		return bat.Width8
	case lo >= -(1<<15) && hi < 1<<15:
		return bat.Width16
	case lo >= -(1<<31) && hi < 1<<31:
		return bat.Width32
	default:
		return bat.Width64
	}
}

// PrefixRange returns the code range of dictionary entries with the given
// prefix — the Q14-style rewrite over a loaded dictionary.
func PrefixRange(dict []string, prefix string) (lo, hi int64, ok bool) {
	start := sort.SearchStrings(dict, prefix)
	end := start
	for end < len(dict) && len(dict[end]) >= len(prefix) && dict[end][:len(prefix)] == prefix {
		end++
	}
	if end == start {
		return 0, 0, false
	}
	return int64(start), int64(end - 1), true
}
