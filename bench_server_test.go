package repro_test

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/spatial"
)

// BenchmarkServerConcurrentStreams drives the query service with 32
// concurrent clients — half classic CPU streams, half A&R GPU streams, the
// §VI-E Fig 11 setup — and reports wall-clock requests/sec plus the
// simulated Fig 11 gap: the cumulative simulated throughput and how much of
// it the A&R stream stacks on top of the saturated memory wall.
func BenchmarkServerConcurrentStreams(b *testing.B) {
	catalog := plan.NewCatalog(device.PaperSystem())
	d := spatial.Generate(100_000, 7)
	if err := d.Load(catalog); err != nil {
		b.Fatal(err)
	}
	if err := d.Decompose(catalog); err != nil {
		b.Fatal(err)
	}
	srv := server.New(engine.New(catalog, engine.Options{
		Sched: engine.SchedConfig{CPUWorkers: 16, GPUStreams: 2, ARQueue: 1 << 20},
	}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	addr := l.Addr().String()

	const clients = 32
	work := make(chan int, b.N)
	for i := 0; i < b.N; i++ {
		work <- i
	}
	close(work)

	var failures atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		mode := `\mode classic`
		if i%2 == 1 {
			mode = `\mode ar`
		}
		wg.Add(1)
		go func(mode string) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				failures.Add(1)
				return
			}
			defer cl.Close()
			if _, err := cl.Query(mode); err != nil {
				failures.Add(1)
				return
			}
			for j := range work {
				q := fmt.Sprintf("select count(lon) from trips where lon between %d and %d",
					2_00000+int64(j%8)*10_000, 2_60000)
				if _, err := cl.Query(q); err != nil {
					failures.Add(1)
					return
				}
			}
		}(mode)
	}
	wg.Wait()
	b.StopTimer()
	if n := failures.Load(); n > 0 {
		b.Fatalf("%d client streams failed", n)
	}

	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	gpu, cpu, pci, queries := srv.Engine().Totals().Totals()
	if queries > clients { // skip the warm-up-sized runs
		simTotal := (gpu + cpu + pci).Seconds()
		if simTotal > 0 {
			// Simulated cumulative throughput: queries per second of
			// simulated busy time, and the share the GPU stream adds on top
			// of the host (CPU+PCI) side of the memory wall.
			b.ReportMetric(float64(queries)/simTotal, "sim_q/s")
			b.ReportMetric(gpu.Seconds()/simTotal*100, "sim_gpu_%")
		}
	}
}
