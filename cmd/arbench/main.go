// Command arbench regenerates the paper's evaluation tables and figures
// (see EXPERIMENTS.md). Each experiment executes the real operator
// implementations at a configurable data scale on the simulated device
// system and prints the same series/rows the paper reports.
//
// Usage:
//
//	arbench                          # run everything at default scale
//	arbench -experiment fig9         # one experiment
//	arbench -micro 10000000 -spatial 10000000 -sf 0.05
//	arbench -quick                   # test-suite scale (fast)
//	arbench -quick -json BENCH.json  # also write a machine-readable report
//
// With -json the run additionally writes a JSON report carrying, per
// experiment, the wall-clock latency and the full figure data (series
// points and simulated GPU/CPU/PCI meter bars), plus a per-operator stage
// trace of the spatial benchmark query (est vs actual rows and the device
// split per pipeline stage).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// report is the machine-readable benchmark record written by -json: one
// entry per experiment ran (latency + figure data, which carries the
// simulated meter split), the Table I facts, and a per-operator stage
// trace of the spatial benchmark query.
type report struct {
	Options     experiments.Options       `json:"options"`
	Experiments []reportExperiment        `json:"experiments"`
	Table1      *experiments.Table1Result `json:"table1,omitempty"`
	StageTrace  *obs.Trace                `json:"stage_trace,omitempty"`
}

type reportExperiment struct {
	ID          string              `json:"id"`
	Doc         string              `json:"doc"`
	WallSeconds float64             `json:"wall_seconds"`
	Figure      *experiments.Figure `json:"figure"`
}

var figures = []struct {
	id  string
	fn  func(experiments.Options) (*experiments.Figure, error)
	doc string
}{
	{"fig8a", experiments.Fig8a, "selection on GPU-resident data"},
	{"fig8b", experiments.Fig8b, "selection on distributed data (8 bit CPU)"},
	{"fig8c", experiments.Fig8c, "selection, varying GPU-resident bits"},
	{"fig8d", experiments.Fig8d, "projection/join on GPU-resident data"},
	{"fig8e", experiments.Fig8e, "projection/join on distributed data"},
	{"fig8f", experiments.Fig8f, "grouping on GPU-resident data"},
	{"fig9", experiments.Fig9, "spatial range queries"},
	{"fig10a", experiments.Fig10a, "TPC-H Q1"},
	{"fig10b", experiments.Fig10b, "TPC-H Q6"},
	{"fig10c", experiments.Fig10c, "TPC-H Q14"},
	{"fig11", experiments.Fig11, "memory-wall throughput"},
	{"ingest", experiments.Ingest, "insert stream + incremental BWD maintenance"},
	{"alloc", experiments.Alloc, "host memory discipline: word-parallel arena kernels vs per-element baseline"},
	{"partition", experiments.Partition, "scatter-gather over hash partitions"},
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1, fig8a..fig8f, table1, fig9, fig10a..fig10c, fig11, ingest, partition, all)")
		microN     = flag.Int("micro", 0, "microbenchmark rows to execute (default from -quick/full presets)")
		spatialN   = flag.Int("spatial", 0, "spatial fixes to execute")
		sf         = flag.Float64("sf", 0, "TPC-H scale factor to execute")
		threads    = flag.Int("threads", 1, "CPU threads for refinement/classic plans")
		seed       = flag.Int64("seed", 7, "data generator seed")
		quick      = flag.Bool("quick", false, "use the fast test-suite data scale")
		list       = flag.Bool("list", false, "list experiments and exit")
		jsonPath   = flag.String("json", "", "also write a machine-readable report to this path")
	)
	flag.Parse()

	if *list {
		fmt.Println("fig1    flash-memory background chart (static)")
		for _, f := range figures {
			fmt.Printf("%-7s %s\n", f.id, f.doc)
		}
		fmt.Println("table1  spatial benchmark definition + data volumes")
		return
	}

	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	if *microN > 0 {
		opts.MicroN = *microN
	}
	if *spatialN > 0 {
		opts.SpatialN = *spatialN
	}
	if *sf > 0 {
		opts.TPCHSF = *sf
	}
	opts.Threads = *threads
	opts.Seed = *seed

	want := strings.ToLower(*experiment)
	rep := report{Options: opts}
	ran := 0
	if want == "all" || want == "fig1" {
		fmt.Print(experiments.Fig1().Render())
		fmt.Println()
		ran++
	}
	for _, f := range figures {
		if want != "all" && want != f.id {
			continue
		}
		start := time.Now()
		fig, err := f.fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arbench: %s: %v\n", f.id, err)
			os.Exit(1)
		}
		rep.Experiments = append(rep.Experiments, reportExperiment{
			ID: f.id, Doc: f.doc, WallSeconds: time.Since(start).Seconds(), Figure: fig,
		})
		fmt.Print(fig.Render())
		fmt.Println()
		ran++
	}
	if want == "all" || want == "table1" {
		tb, err := experiments.Table1(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arbench: table1: %v\n", err)
			os.Exit(1)
		}
		rep.Table1 = tb
		fmt.Print(tb.Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "arbench: unknown experiment %q (try -list)\n", *experiment)
		os.Exit(2)
	}
	if *jsonPath != "" {
		tr, err := experiments.TraceSpatial(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arbench: stage trace: %v\n", err)
			os.Exit(1)
		}
		rep.StageTrace = tr
		out, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "arbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "arbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote machine-readable report to %s\n", *jsonPath)
	}
}
