// Command arserve serves the A&R engine as a concurrent SQL query service.
// It pre-loads the TPC-H subset and the spatial trips table (decomposed, so
// A&R routing works immediately) and speaks the line protocol of package
// server: one statement per line, responses terminated by "ok" or
// "error: ...".
//
//	$ go run ./cmd/arserve -addr :7483 &
//	$ nc localhost 7483
//	select count(lon) from trips where lon between 2.68288 and 2.70228 and lat between 50.4222 and 50.4485
//	[3942]
//	ok
//	\stats
//	...
//
// Meta commands: \cost, \mode [auto|ar|classic], \tables, \stats,
// \merge [table], \checkpoint [table], \explain [analyze] <select>,
// \metrics, \slow [<dur>|off], \prepare <name> <sql>,
// \run <name> [params...], \q. Auto mode (the default) picks the
// classic or A&R executor per query from the cost model's
// histogram-based estimates; \mode ar|classic forces one.
//
// With -data <dir> the store is durable: DML is write-ahead logged (fsync
// policy via -fsync always|interval|off), merges checkpoint the bit-sliced
// base to segment files, and restarting with the same -data recovers the
// committed state — so the demo preload only happens on the first run.
//
// The SQL surface includes DML — INSERT INTO ... VALUES, DELETE FROM ...
// WHERE, CREATE TABLE (optionally PARTITION BY HASH/RANGE ... PARTITIONS n)
// — served against the mutable column store: inserts land in per-table
// delta segments and are merged into the bit-sliced base segments by the
// background merger (or \merge). Partitioned tables scatter scans across
// per-partition device streams under the scheduler's per-device ledger
// and show their fan-out in \tables, \explain and the metrics registry.
//
// With -metrics <addr> the process additionally serves the engine metrics
// registry in Prometheus text format on http://<addr>/metrics (query
// counts and latency histograms per route, scheduler queue depth and
// high-water, plan-cache and store counters, per-table delta depth).
// -slow <dur> arms the slow-query log at startup, retaining full
// per-operator traces of queries over the threshold (inspect via \slow).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/device"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/spatial"
	"repro/internal/tpch"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7483", "listen address")
		sf       = flag.Float64("sf", 0.002, "TPC-H scale factor preloaded")
		spatialN = flag.Int("spatial", 200_000, "spatial fixes preloaded")
		cpu      = flag.Int("cpu", 0, "CPU worker pool size (default: simulated hardware threads)")
		gpu      = flag.Int("gpu", 1, "concurrent GPU (A&R) streams")
		arQueue  = flag.Int("ar-queue", 0, "A&R admission queue bound (default 2x streams)")
		cache    = flag.Int("cache", 128, "plan cache entries (negative disables)")
		threads  = flag.Int("threads", 1, "CPU threads per query")
		mergeAt  = flag.Int("merge-threshold", 0, "delta rows before background merge (default 65536, negative disables)")
		metrics  = flag.String("metrics", "", "HTTP listen address for GET /metrics in Prometheus text format (empty disables)")
		slow     = flag.Duration("slow", 0, "arm the slow-query log for queries over this wall time (0 disables)")
		dataDir  = flag.String("data", "", "data directory for the WAL and segment files (empty: memory-only)")
		fsync    = flag.String("fsync", "always", "WAL fsync policy with -data: always, interval, off")
	)
	flag.Parse()

	sys := device.PaperSystem()
	catalog := plan.NewCatalog(sys)
	// A data directory that already holds state IS the database: the demo
	// tables (and everything created since) recover from it, so preloading
	// them again would collide.
	if *dataDir == "" || !durable.Exists(*dataDir) {
		tpchData := tpch.Generate(*sf, 42)
		if err := tpchData.Load(catalog); err != nil {
			fail(err)
		}
		if err := tpchData.DecomposeAll(catalog, false); err != nil {
			fail(err)
		}
		spatialData := spatial.Generate(*spatialN, 7)
		if err := spatialData.Load(catalog); err != nil {
			fail(err)
		}
		if err := spatialData.Decompose(catalog); err != nil {
			fail(err)
		}
	}

	// The server is a thin protocol adapter over one shared engine; any
	// other front-end could embed the same engine value concurrently.
	eng, err := engine.Open(catalog, engine.Options{
		Sched:              engine.SchedConfig{CPUWorkers: *cpu, GPUStreams: *gpu, ARQueue: *arQueue},
		CacheSize:          *cache,
		Threads:            *threads,
		MergeThreshold:     *mergeAt,
		SlowQueryThreshold: *slow,
		DataDir:            *dataDir,
		Fsync:              *fsync,
	})
	if err != nil {
		fail(err)
	}
	if d := eng.Durability(); d != nil {
		fmt.Printf("arserve: data dir %s (fsync %s); %s\n", d.Dir(), d.Stats().Policy, d.Recovery())
	}
	// Background merger: compacts delta segments past the threshold so the
	// write path stays append-cheap while reads stay mostly base-resident
	// (with -data each background merge is a checkpoint).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng.StartMaintenance(ctx)
	srv := server.New(eng)

	// Clean shutdown on SIGINT/SIGTERM: stop accepting, checkpoint dirty
	// tables, fsync and close the WAL — a reopened -data dir then replays
	// zero records.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigC
		fmt.Println("arserve: shutting down")
		srv.Close()
		if err := eng.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "arserve: close:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", eng.Metrics())
		msrv := &http.Server{Addr: *metrics, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fail(err)
			}
		}()
		defer msrv.Close()
		fmt.Printf("arserve: metrics on http://%s/metrics\n", *metrics)
	}
	fmt.Printf("arserve: lineitem (SF-%g), part, trips (%d fixes) loaded and decomposed\n", *sf, *spatialN)
	fmt.Printf("arserve: listening on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "arserve:", err)
	os.Exit(1)
}
