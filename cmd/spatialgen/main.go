// Command spatialgen generates the synthetic GPS trace data set of the
// spatial range-query benchmark (Table I) to CSV.
//
// Usage:
//
//	spatialgen -n 1000000 -out trips.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/fixed"
	"repro/internal/spatial"
)

func main() {
	var (
		n    = flag.Int("n", 1_000_000, "number of GPS fixes")
		out  = flag.String("out", "trips.csv", "output file")
		seed = flag.Int64("seed", 7, "generator seed")
	)
	flag.Parse()

	d := spatial.Generate(*n, *seed)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "tripid,lon,lat,time")
	for i := 0; i < d.Len(); i++ {
		fmt.Fprintf(w, "%d,%s,%s,%d\n",
			d.TripID[i],
			fixed.Format(d.Lon[i], fixed.Scale5),
			fixed.Format(d.Lat[i], fixed.Scale5),
			d.Time[i])
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "spatialgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d fixes to %s\n", d.Len(), *out)
}
