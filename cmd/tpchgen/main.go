// Command tpchgen generates the TPC-H subset (lineitem, part) used by the
// reproduction to CSV files, for inspection or for loading into other
// systems.
//
// Usage:
//
//	tpchgen -sf 0.01 -out /tmp/tpch
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fixed"
	"repro/internal/tpch"
)

func main() {
	var (
		sf   = flag.Float64("sf", 0.01, "scale factor (SF-1 = 6M lineitems)")
		out  = flag.String("out", ".", "output directory")
		seed = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	d := tpch.Generate(*sf, *seed)
	if err := writeLineitem(d, filepath.Join(*out, "lineitem.csv")); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
	if err := writePart(d, filepath.Join(*out, "part.csv")); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d lineitems and %d parts to %s\n", d.LineCount, d.PartCount, *out)
}

var retFlags = []string{"A", "N", "R"}
var lineStats = []string{"F", "O"}

func writeLineitem(d *tpch.Data, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "l_partkey,l_quantity,l_extendedprice,l_discount,l_tax,l_returnflag,l_linestatus,l_shipdate")
	for i := 0; i < d.LineCount; i++ {
		date := tpch.Epoch.AddDate(0, 0, int(d.Shipdate[i]))
		fmt.Fprintf(w, "%d,%d,%s,%s,%s,%s,%s,%s\n",
			d.Partkey[i], d.Quantity[i],
			fixed.Format(d.ExtPrice[i], fixed.Scale2),
			fixed.Format(d.Discount[i], fixed.Scale2),
			fixed.Format(d.Tax[i], fixed.Scale2),
			retFlags[d.RetFlag[i]], lineStats[d.LineStat[i]],
			date.Format("2006-01-02"))
	}
	return w.Flush()
}

func writePart(d *tpch.Data, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "p_partkey,p_type")
	for i := 0; i < d.PartCount; i++ {
		fmt.Fprintf(w, "%d,%s\n", d.PKey[i], tpch.Types[d.PType[i]])
	}
	return w.Flush()
}
