// Command arshell is a minimal interactive SQL shell over the A&R engine.
// It starts with the TPC-H subset and the spatial trips table pre-loaded
// (at small scale) so the paper's queries can be typed directly.
//
//	$ go run ./cmd/arshell
//	ar> select bwdecompose(lon, 24), bwdecompose(lat, 24) from trips
//	ar> select count(*) from trips where lon between 2.68288 and 2.70228
//	                                 and lat between 50.4222 and 50.4485
//	ar> explain select count(*) from trips where lon between 268288 and 270228
//	ar> \q
//
// Meta commands: \tables, \cost (toggle cost report), \q.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/spatial"
	"repro/internal/sql"
	"repro/internal/tpch"
)

func main() {
	var (
		sf       = flag.Float64("sf", 0.002, "TPC-H scale factor preloaded")
		spatialN = flag.Int("spatial", 200_000, "spatial fixes preloaded")
	)
	flag.Parse()

	sys := device.PaperSystem()
	catalog := plan.NewCatalog(sys)
	if err := tpch.Generate(*sf, 42).Load(catalog); err != nil {
		fmt.Fprintln(os.Stderr, "arshell:", err)
		os.Exit(1)
	}
	if err := spatial.Generate(*spatialN, 7).Load(catalog); err != nil {
		fmt.Fprintln(os.Stderr, "arshell:", err)
		os.Exit(1)
	}

	fmt.Printf("A&R shell — lineitem (SF-%g), part, trips (%d fixes) loaded.\n", *sf, *spatialN)
	fmt.Println(`Decompose columns first: select bwdecompose(col, bits) from table. \q quits.`)

	showCost := true
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("ar> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return
		case line == `\cost`:
			showCost = !showCost
			fmt.Printf("cost report %v\n", map[bool]string{true: "on", false: "off"}[showCost])
			continue
		case line == `\tables`:
			for _, name := range []string{"lineitem", "part", "trips"} {
				t, err := catalog.Table(name)
				if err != nil {
					continue
				}
				fmt.Printf("%s (%d rows): %s\n", name, t.Len(), strings.Join(t.Columns(), ", "))
			}
			continue
		}
		res, err := sql.Run(catalog, line, plan.ExecOpts{})
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(sql.Format(res))
		if res != nil && showCost && res.Meter != nil {
			fmt.Printf("-- simulated %v; candidates %d -> refined %d; approx count %v\n",
				res.Meter, res.Candidates, res.Refined, res.Approx.Count)
		}
	}
}
