// Command arshell is a minimal interactive SQL shell over the A&R engine.
// It starts with the TPC-H subset and the spatial trips table pre-loaded
// (at small scale) so the paper's queries can be typed directly.
//
//	$ go run ./cmd/arshell
//	ar> select bwdecompose(lon, 24), bwdecompose(lat, 24) from trips
//	ar> select count(*) from trips where lon between 2.68288 and 2.70228
//	                                 and lat between 50.4222 and 50.4485
//	ar> select count(*) from trips where lon < 2.7 or lat > 50.44
//	ar> select l_returnflag, sum(l_quantity) as q from lineitem
//	        group by l_returnflag having count(*) > 100 order by q desc limit 2
//	ar> \explain select count(*) from lineitem join part on lineitem.l_partkey = part.p_partkey
//	ar> create table orders (qty int, price decimal2)
//	ar> create table events (ts int, v int) partition by hash(ts) partitions 4
//	ar> insert into orders values (5, 1.50), (10, 2.25)
//	ar> delete from orders where qty < 6
//	ar> \load data.csv items id:int,price:decimal2,kind:dict
//	ar> \merge
//	ar> \q
//
// The shell is a thin REPL over an engine session — the same
// internal/engine facade the TCP server adapts — so its meta-command
// surface is identical to the server's: \cost, \mode [auto|ar|classic],
// \tables, \stats, \merge [table], \checkpoint [table],
// \explain [analyze] <select>, \metrics, \slow [<dur>|off],
// \prepare <name> <sql>, \run <name> [params...], \q. With -data <dir> the
// store is durable (WAL + segment files, -fsync selects the sync policy)
// and a restart with the same -data recovers the committed state instead
// of preloading the demo tables.
// In auto mode (the default) the cost model picks the classic or A&R
// executor per query from histogram-based cardinality estimates;
// \mode ar|classic forces one instead.
// \explain renders the assembled operator pipeline (the mode choice with
// its costing rationale, scan strategy, cost-ordered filters with
// estimated selectivities and row counts, join chain,
// delta/top-k stages) without executing the statement; \explain analyze
// executes it and annotates each stage with estimated vs actual rows and
// the simulated GPU/CPU/PCI split. One command is shell-only because it
// reads the local filesystem:
//
//	\load <csv> <table> <schema>   ingest a CSV file (schema syntax
//	                               id:int,price:decimal2,name:dict,day:date)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/csvload"
	"repro/internal/device"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/spatial"
	"repro/internal/tpch"
)

func main() {
	var (
		sf       = flag.Float64("sf", 0.002, "TPC-H scale factor preloaded")
		spatialN = flag.Int("spatial", 200_000, "spatial fixes preloaded")
		threads  = flag.Int("threads", 1, "CPU threads per query")
		mergeAt  = flag.Int("merge-threshold", 0, "delta rows before background merge (default 65536, negative disables)")
		dataDir  = flag.String("data", "", "data directory for the WAL and segment files (empty: memory-only)")
		fsync    = flag.String("fsync", "always", "WAL fsync policy with -data: always, interval, off")
	)
	flag.Parse()

	sys := device.PaperSystem()
	catalog := plan.NewCatalog(sys)
	// An existing data directory is the database: the demo tables recover
	// from it, so only a fresh (or memory-only) start preloads them.
	if *dataDir == "" || !durable.Exists(*dataDir) {
		if err := tpch.Generate(*sf, 42).Load(catalog); err != nil {
			fmt.Fprintln(os.Stderr, "arshell:", err)
			os.Exit(1)
		}
		if err := spatial.Generate(*spatialN, 7).Load(catalog); err != nil {
			fmt.Fprintln(os.Stderr, "arshell:", err)
			os.Exit(1)
		}
	}

	eng, err := engine.Open(catalog, engine.Options{
		Threads: *threads, MergeThreshold: *mergeAt,
		DataDir: *dataDir, Fsync: *fsync,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arshell:", err)
		os.Exit(1)
	}
	// Clean shutdown: checkpoint dirty tables and close the WAL, so the
	// next start with the same -data replays nothing.
	defer func() {
		if err := eng.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "arshell: close:", err)
		}
	}()
	sess := eng.Session()
	defer sess.Close()
	sess.ToggleCost() // the shell reports simulated costs by default

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng.StartMaintenance(ctx) // background delta merger (checkpoints with -data)

	if d := eng.Durability(); d != nil {
		fmt.Printf("data dir %s (fsync %s); %s\n", d.Dir(), d.Stats().Policy, d.Recovery())
	}
	fmt.Printf("A&R shell — lineitem (SF-%g), part, trips (%d fixes) loaded.\n", *sf, *spatialN)
	fmt.Println(`Decompose columns first: select bwdecompose(col, bits) from table. \q quits.`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("ar> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if cmd, _, _ := strings.Cut(line, " "); cmd == `\load` {
			if err := loadCSV(catalog, line); err != nil {
				fmt.Println("error:", err)
			}
			continue
		}
		if lines, quit, handled, err := sess.Meta(ctx, line); handled || quit {
			if quit {
				return
			}
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, l := range lines {
				fmt.Println(l)
			}
			continue
		}
		res, err := sess.Query(ctx, line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		for _, l := range engine.RenderResult(res, sess.Cost()) {
			fmt.Println(l)
		}
	}
}

// loadCSV handles \load <csv> <table> <schema>: it wires internal/csvload
// so external data can be ingested interactively, then decomposed with
// bwdecompose and queried. Shell-only, since it reads the local
// filesystem.
func loadCSV(catalog *plan.Catalog, line string) error {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return fmt.Errorf(`usage: \load <csv> <table> <schema>  (schema like id:int,price:decimal2,name:dict)`)
	}
	path, table, spec := fields[1], fields[2], fields[3]
	schema, err := csvload.ParseSchema(table, spec)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := csvload.Load(catalog, f, schema)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d rows into %s (%s)\n", res.Rows, table, strings.Join(res.Table.Columns(), ", "))
	for col, dict := range res.Dicts {
		fmt.Printf("dictionary %s.%s: %d entries\n", table, col, len(dict))
	}
	return nil
}
