// Command arshell is a minimal interactive SQL shell over the A&R engine.
// It starts with the TPC-H subset and the spatial trips table pre-loaded
// (at small scale) so the paper's queries can be typed directly.
//
//	$ go run ./cmd/arshell
//	ar> select bwdecompose(lon, 24), bwdecompose(lat, 24) from trips
//	ar> select count(*) from trips where lon between 2.68288 and 2.70228
//	                                 and lat between 50.4222 and 50.4485
//	ar> explain select count(*) from trips where lon between 268288 and 270228
//	ar> \q
//
// The shell is a thin REPL over an engine session — the same
// internal/engine facade the TCP server adapts — so its meta-command
// surface is identical to the server's: \cost, \mode [auto|ar|classic],
// \tables, \stats, \prepare <name> <sql>, \run <name> [params...], \q.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/spatial"
	"repro/internal/tpch"
)

func main() {
	var (
		sf       = flag.Float64("sf", 0.002, "TPC-H scale factor preloaded")
		spatialN = flag.Int("spatial", 200_000, "spatial fixes preloaded")
		threads  = flag.Int("threads", 1, "CPU threads per query")
	)
	flag.Parse()

	sys := device.PaperSystem()
	catalog := plan.NewCatalog(sys)
	if err := tpch.Generate(*sf, 42).Load(catalog); err != nil {
		fmt.Fprintln(os.Stderr, "arshell:", err)
		os.Exit(1)
	}
	if err := spatial.Generate(*spatialN, 7).Load(catalog); err != nil {
		fmt.Fprintln(os.Stderr, "arshell:", err)
		os.Exit(1)
	}

	eng := engine.New(catalog, engine.Options{Threads: *threads})
	sess := eng.Session()
	defer sess.Close()
	sess.ToggleCost() // the shell reports simulated costs by default

	fmt.Printf("A&R shell — lineitem (SF-%g), part, trips (%d fixes) loaded.\n", *sf, *spatialN)
	fmt.Println(`Decompose columns first: select bwdecompose(col, bits) from table. \q quits.`)

	ctx := context.Background()
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("ar> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if lines, quit, handled, err := sess.Meta(ctx, line); handled || quit {
			if quit {
				return
			}
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, l := range lines {
				fmt.Println(l)
			}
			continue
		}
		res, err := sess.Query(ctx, line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		for _, l := range engine.RenderResult(res, sess.Cost()) {
			fmt.Println(l)
		}
	}
}
