// Quickstart: bitwise-decompose a column, run an approximate selection on
// the simulated GPU, refine it on the CPU, and compare against the classic
// bulk engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/ar"
	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
)

func main() {
	// One million shuffled integers, like a small version of the paper's
	// microbenchmark column.
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1_000_000)
	for i := range vals {
		vals[i] = int64(i)
	}
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	column := bat.NewDense(vals, bat.Width32)

	// The simulated testbed: GTX 680 (2 GiB) + dual Xeon + PCI-E.
	sys := device.PaperSystem()

	// bwdecompose(column, 12): the major 12 bits go to the device, the
	// remaining 8 stay on the host as the residual.
	col, err := bwd.Decompose(column, 12, sys)
	if err != nil {
		log.Fatal(err)
	}
	defer col.Release()
	fmt.Printf("decomposition: %v\n", col.Dec)
	fmt.Printf("device bytes:  %d (of %d raw)\n", col.GPUBytes(), col.OriginalBytes())
	fmt.Printf("host bytes:    %d\n", col.CPUBytes())

	// SELECT ... WHERE 100000 <= v <= 150000, the A&R way.
	lo, hi := int64(100_000), int64(150_000)
	m := device.NewMeter(sys)

	// Phase A on the device: relaxed predicate over the approximation.
	cands := ar.SelectApprox(m, col, col.Relax(lo, hi))
	fmt.Printf("\napproximate phase: %d candidates (exact answer is in there)\n", cands.Len())
	approxCount := ar.CountApprox(m, cands)
	fmt.Printf("approximate count: %v (strict bounds, available before refinement)\n", approxCount)

	// Ship once across the bus, refine on the CPU.
	cands.Ship(m)
	refined, exactVals := ar.SelectRefine(m, 1, col, lo, hi, cands)
	fmt.Printf("refined result:    %d tuples (%d false positives eliminated)\n",
		refined.Len(), cands.Len()-refined.Len())
	fmt.Printf("simulated cost:    %v\n", m)

	// Cross-check against the classic bulk engine.
	mClassic := device.NewMeter(sys)
	want := bulk.SelectRange(mClassic, 1, column, lo, hi)
	if len(want) != refined.Len() {
		log.Fatalf("MISMATCH: classic found %d, A&R found %d", len(want), refined.Len())
	}
	for i, id := range refined.IDs {
		if vals[id] != exactVals[i] {
			log.Fatalf("MISMATCH at id %d", id)
		}
	}
	fmt.Printf("\nclassic engine agrees: %d tuples, simulated cost %v\n", len(want), mClassic)
	fmt.Printf("speed-up (simulated): %.1fx\n",
		mClassic.Total().Seconds()/m.Total().Seconds())
}
