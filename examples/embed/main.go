// Embedding the engine as a library: the ten-line path from a loaded
// catalog to query results — no shell, no server, no scheduler wiring.
// The same engine.Engine value also powers cmd/arshell and cmd/arserve;
// an application embeds it the way go-mysql-server is embedded.
//
//	go run ./examples/embed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/spatial"
)

func main() {
	// Load data into a catalog (any loader works; this one generates GPS
	// fixes as the trips table).
	catalog := plan.NewCatalog(device.PaperSystem())
	if err := spatial.Generate(200_000, 7).Load(catalog); err != nil {
		log.Fatal(err)
	}

	// The embeddable facade: everything below is the public engine API.
	eng := engine.New(catalog, engine.Options{})
	ctx := context.Background()
	mustQuery(eng, ctx, "select bwdecompose(lon, 24), bwdecompose(lat, 24) from trips")
	res := mustQuery(eng, ctx,
		"select count(lon) from trips where lon between 2.68288 and 2.70228 and lat between 50.4222 and 50.4485")
	fmt.Printf("count = %d (route %s, simulated %v)\n", res.Rows[0].Vals[0], res.Route, res.Meter)

	// Prepared statements take $1..$9 literal parameters, validated at
	// prepare time and substituted at each Exec.
	stmt, err := eng.Prepare(ctx, "select count(lon) from trips where lon between $1 and $2")
	if err != nil {
		log.Fatal(err)
	}
	for _, bounds := range [][2]string{{"2.68288", "2.70228"}, {"2.60000", "2.80000"}} {
		r, err := stmt.Exec(ctx, bounds[0], bounds[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("lon in [%s, %s]: %d fixes\n", bounds[0], bounds[1], r.Rows[0].Vals[0])
	}

	// Every execution is context-aware: a cancelled ctx aborts the query
	// at its next pipeline checkpoint and frees its scheduler slot.
	expired, cancel := context.WithTimeout(ctx, -time.Second)
	defer cancel()
	if _, err := eng.Query(expired, "select count(lon) from trips where lon between 2.6 and 2.8"); err != nil {
		fmt.Println("cancelled query returned:", err)
	}
}

func mustQuery(eng *engine.Engine, ctx context.Context, src string) *engine.Result {
	res, err := eng.Query(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
