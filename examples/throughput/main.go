// Throughput scaling (Fig 11, "A Gap in the Memory Wall"): a classic CPU
// query stream saturates the host memory bandwidth, while an A&R stream on
// the device's own memory stacks almost additively on top.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	opts := experiments.Defaults()
	fig, err := experiments.Fig11(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig.Render())

	fmt.Println("\nReading the numbers:")
	fmt.Println("- the classic stream stops scaling once min(t x per-thread, aggregate)")
	fmt.Println("  bandwidth saturates: that flat line is the memory wall;")
	fmt.Println("- the A&R stream works out of the device's separate memory, so its")
	fmt.Println("  throughput is untouched by CPU load — the 'gap' in the wall;")
	fmt.Println("- running both costs the CPU stream only the bandwidth that A&R")
	fmt.Println("  refinement and DMA transfers draw from the host, so combined")
	fmt.Println("  throughput is nearly additive (the paper: 12.6 + 13.4 = 26.0 q/s).")
}
