// Example server: an in-process query service under concurrent load.
//
// It starts a server over the spatial data set, runs two concurrent client
// streams against it — classic CPU queries and A&R GPU queries, the §VI-E
// setup — and prints the resulting \stats block: plan-cache hits, peak
// concurrency per device, and the simulated meter totals.
package main

import (
	"fmt"
	"net"
	"os"
	"sync"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/spatial"
)

func main() {
	catalog := plan.NewCatalog(device.PaperSystem())
	data := spatial.Generate(200_000, 7)
	if err := data.Load(catalog); err != nil {
		fail(err)
	}
	if err := data.Decompose(catalog); err != nil {
		fail(err)
	}

	// ARQueue is sized for the forced-A&R client count: the example pins
	// half its clients to \mode ar, which does not spill on overload the
	// way auto mode does.
	srv := server.New(engine.New(catalog, engine.Options{
		Sched: engine.SchedConfig{CPUWorkers: 8, ARQueue: 256},
	}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	addr := l.Addr().String()

	const q = "select count(lon) from trips where lon between 2.68288 and 2.70228 and lat between 50.4222 and 50.4485"
	const clients, perClient = 8, 16

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		mode := map[bool]string{true: "classic", false: "ar"}[i%2 == 0]
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				fail(err)
			}
			defer cl.Close()
			if _, err := cl.Query(`\mode ` + mode); err != nil {
				fail(err)
			}
			for j := 0; j < perClient; j++ {
				if _, err := cl.Query(q); err != nil {
					fail(err)
				}
			}
		}()
	}
	wg.Wait()

	cl, err := server.Dial(addr)
	if err != nil {
		fail(err)
	}
	defer cl.Close()
	lines, err := cl.Query(`\stats`)
	if err != nil {
		fail(err)
	}
	fmt.Printf("ran %d clients x %d queries (half classic, half A&R)\n", clients, perClient)
	for _, l := range lines {
		fmt.Println(l)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "example server:", err)
	os.Exit(1)
}
