// TPC-H under Approximate & Refine: runs Q1, Q6 and Q14 on a generated
// data set in both execution models, prints results, device-time
// breakdowns and the approximate answers available after phase A.
//
//	go run ./examples/tpch
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/fixed"
	"repro/internal/plan"
	"repro/internal/tpch"
)

func main() {
	const sf = 0.01 // 60k lineitems: adjust upward for bigger runs
	fmt.Printf("generating TPC-H SF-%g...\n", sf)
	data := tpch.Generate(sf, 42)

	sys := device.PaperSystem()
	catalog := plan.NewCatalog(sys)
	if err := data.Load(catalog); err != nil {
		log.Fatal(err)
	}
	if err := data.DecomposeAll(catalog, false); err != nil {
		log.Fatal(err)
	}

	q14, err := tpch.Q14(1995, 9)
	if err != nil {
		log.Fatal(err)
	}
	queries := []struct {
		name string
		q    plan.Query
	}{
		{"Q1", tpch.Q1(90)},
		{"Q6", tpch.Q6(1994, 6, 24)},
		{"Q14", q14},
	}

	eng := engine.New(catalog, engine.Options{})
	ctx := context.Background()
	arSess := eng.SessionFor(engine.ModeAR)
	clSess := eng.SessionFor(engine.ModeClassic)

	for _, entry := range queries {
		fmt.Printf("\n=== TPC-H %s ===\n", entry.name)
		arRes, err := arSess.QueryPlan(ctx, entry.q)
		if err != nil {
			log.Fatal(err)
		}
		clRes, err := clSess.QueryPlan(ctx, entry.q)
		if err != nil {
			log.Fatal(err)
		}
		if !plan.EqualResults(arRes.Rows, clRes.Rows) {
			log.Fatalf("%s: execution models disagree", entry.name)
		}
		fmt.Printf("A&R:     %v\n", arRes.Meter)
		fmt.Printf("classic: %v\n", clRes.Meter)
		fmt.Printf("speed-up %.1fx; candidates %d -> refined %d\n",
			clRes.Meter.Total().Seconds()/arRes.Meter.Total().Seconds(),
			arRes.Candidates, arRes.Refined)

		switch entry.name {
		case "Q1":
			fmt.Println("returnflag/linestatus groups (sum_qty, sum_base, sum_disc, charge, avgs, count):")
			fmt.Print(plan.FormatRows(arRes.Rows))
		case "Q6":
			fmt.Printf("revenue = %s (approximate bounds before refinement: [%s, %s])\n",
				fixed.Format(arRes.Rows[0].Vals[0], fixed.Scale2),
				fixed.Format(arRes.Approx.Aggs[0].Lo, fixed.Scale2),
				fixed.Format(arRes.Approx.Aggs[0].Hi, fixed.Scale2))
		case "Q14":
			fmt.Printf("promo_revenue = %.2f%%\n", tpch.Q14Ratio(arRes.Result))
		}
	}
}
