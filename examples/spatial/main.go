// Spatial range queries (Table I of the paper): generate GPS traces, load
// them as the trips table, decompose the coordinates, and run the
// range-count query under both execution models with the device-time
// breakdown of Fig 9.
//
//	go run ./examples/spatial
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/fixed"
	"repro/internal/plan"
	"repro/internal/spatial"
)

func main() {
	const n = 2_000_000
	fmt.Printf("generating %d GPS fixes...\n", n)
	data := spatial.Generate(n, 7)

	sys := device.PaperSystem()
	catalog := plan.NewCatalog(sys)
	if err := data.Load(catalog); err != nil {
		log.Fatal(err)
	}
	// Table I: select bwdecompose(lon,24), bwdecompose(lat,24) from trips.
	if err := data.Decompose(catalog); err != nil {
		log.Fatal(err)
	}
	lon, _ := catalog.Decomposition("trips", "lon")
	lat, _ := catalog.Decomposition("trips", "lat")
	fmt.Printf("lon: %v, %.0f%% smaller than raw\n", lon.Dec, lon.CompressionRatio()*100)
	fmt.Printf("lat: %v, %.0f%% smaller than raw\n", lat.Dec, lat.CompressionRatio()*100)

	q := spatial.RangeCountQuery()
	fmt.Printf("\nquery: count fixes with lon in [%s, %s], lat in [%s, %s]\n",
		fixed.Format(spatial.QueryLonLo, fixed.Scale5), fixed.Format(spatial.QueryLonHi, fixed.Scale5),
		fixed.Format(spatial.QueryLatLo, fixed.Scale5), fixed.Format(spatial.QueryLatHi, fixed.Scale5))

	// Both executions go through the embeddable engine facade: one session
	// per executor mode, like two differently configured clients.
	eng := engine.New(catalog, engine.Options{})
	ctx := context.Background()
	arRes, err := eng.SessionFor(engine.ModeAR).QueryPlan(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA&R:      count=%d   %v\n", arRes.Rows[0].Vals[0], arRes.Meter)
	fmt.Printf("          approximate count bounds (before refinement): %v\n", arRes.Approx.Count)
	fmt.Printf("          candidates %d -> refined %d\n", arRes.Candidates, arRes.Refined)

	clRes, err := eng.SessionFor(engine.ModeClassic).QueryPlan(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classic:  count=%d   %v\n", clRes.Rows[0].Vals[0], clRes.Meter)
	fmt.Printf("stream:   input %d bytes -> %.3fs through PCI-E (hypothetical)\n",
		arRes.InputBytes, arRes.StreamHypothetical())

	if arRes.Rows[0].Vals[0] != clRes.Rows[0].Vals[0] {
		log.Fatal("MISMATCH between execution models")
	}
	fmt.Printf("\nA&R plan (MAL-style, Fig 7):\n")
	for _, line := range arRes.Plan {
		fmt.Println("  " + line)
	}
}
