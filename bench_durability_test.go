package repro_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/plan"
)

// BenchmarkIngestDurability prices durability for the write path: one
// 64-row INSERT statement per iteration through the full SQL front end,
// once against the memory-only engine and once per WAL fsync policy. The
// rows/s metric makes the trade explicit — `always` pays a device flush
// per statement for zero loss on kill -9, `interval` bounds the loss
// window at the group-commit interval, `off` rides the page cache and
// only survives clean shutdown. wal-B/op is the log volume per statement.
func BenchmarkIngestDurability(b *testing.B) {
	configs := []struct {
		name    string
		durable bool
		fsync   string
	}{
		{"memory", false, ""},
		{"fsync=off", true, "off"},
		{"fsync=interval", true, "interval"},
		{"fsync=always", true, "always"},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			cat := plan.NewCatalog(device.PaperSystem())
			opts := engine.Options{MergeThreshold: 1 << 20} // keep merges out of the timed loop
			if cfg.durable {
				opts.DataDir = b.TempDir()
				opts.Fsync = cfg.fsync
				opts.FsyncInterval = 2 * time.Millisecond
			}
			eng, err := engine.Open(cat, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			ctx := context.Background()
			if _, err := eng.Query(ctx, "create table stream (k int, v int)"); err != nil {
				b.Fatal(err)
			}
			var sb strings.Builder
			sb.WriteString("insert into stream values ")
			for i := 0; i < 64; i++ {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, %d)", i, (i*7)%997)
			}
			stmt := sb.String()
			sess := eng.Session()
			defer sess.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Query(ctx, stmt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(64*b.N)/b.Elapsed().Seconds(), "rows/s")
			if d := eng.Durability(); d != nil {
				b.ReportMetric(float64(d.Stats().WALBytes)/float64(b.N), "wal-B/op")
			}
		})
	}
}
